//! Tridiagonal system solvers (Thomas algorithm).
//!
//! The Crank–Nicolson beam-propagation stepper in `nofis-photonics` solves
//! one complex tridiagonal system per propagation step, so this is on the
//! hot path of the Y-branch test case.

use crate::{Complex64, LinalgError};

/// Solves a complex tridiagonal system `A x = d` in place using the Thomas
/// algorithm.
///
/// `lower`, `diag`, and `upper` are the sub-, main-, and super-diagonals;
/// `lower[0]` and `upper[n-1]` are ignored by convention (they do not exist
/// in the matrix) but must be present so all four slices have length `n`.
///
/// The Thomas algorithm is only unconditionally stable for diagonally
/// dominant systems — which Crank–Nicolson matrices are — so no pivoting is
/// performed.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] if the slices differ in length.
/// * [`LinalgError::InvalidArgument`] if the system is empty.
/// * [`LinalgError::Singular`] if an eliminated pivot vanishes.
///
/// # Example
///
/// ```
/// use nofis_linalg::{Complex64, tridiag::solve_complex_tridiagonal};
///
/// # fn main() -> Result<(), nofis_linalg::LinalgError> {
/// let n = 4;
/// let lower = vec![Complex64::from_real(-1.0); n];
/// let diag = vec![Complex64::from_real(2.0); n];
/// let upper = vec![Complex64::from_real(-1.0); n];
/// let d = vec![Complex64::from_real(1.0); n];
/// let x = solve_complex_tridiagonal(&lower, &diag, &upper, &d)?;
/// // Discrete Poisson problem: symmetric solution.
/// assert!((x[0] - x[3]).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve_complex_tridiagonal(
    lower: &[Complex64],
    diag: &[Complex64],
    upper: &[Complex64],
    d: &[Complex64],
) -> Result<Vec<Complex64>, LinalgError> {
    let n = diag.len();
    if n == 0 {
        return Err(LinalgError::invalid("empty tridiagonal system"));
    }
    if lower.len() != n || upper.len() != n || d.len() != n {
        return Err(LinalgError::shape(format!(
            "tridiagonal bands must all have length {n}: got lower={}, upper={}, rhs={}",
            lower.len(),
            upper.len(),
            d.len()
        )));
    }

    let mut c_prime = vec![Complex64::ZERO; n];
    let mut d_prime = vec![Complex64::ZERO; n];

    let mut denom = diag[0];
    if denom.abs() == 0.0 {
        return Err(LinalgError::Singular { pivot: 0 });
    }
    c_prime[0] = upper[0] / denom;
    d_prime[0] = d[0] / denom;

    for i in 1..n {
        denom = diag[i] - lower[i] * c_prime[i - 1];
        if denom.abs() == 0.0 {
            return Err(LinalgError::Singular { pivot: i });
        }
        if i + 1 < n {
            c_prime[i] = upper[i] / denom;
        }
        d_prime[i] = (d[i] - lower[i] * d_prime[i - 1]) / denom;
    }

    let mut x = d_prime;
    for i in (0..n - 1).rev() {
        let next = x[i + 1];
        x[i] -= c_prime[i] * next;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply_tridiag(
        lower: &[Complex64],
        diag: &[Complex64],
        upper: &[Complex64],
        x: &[Complex64],
    ) -> Vec<Complex64> {
        let n = diag.len();
        let mut out = vec![Complex64::ZERO; n];
        for i in 0..n {
            let mut acc = diag[i] * x[i];
            if i > 0 {
                acc += lower[i] * x[i - 1];
            }
            if i + 1 < n {
                acc += upper[i] * x[i + 1];
            }
            out[i] = acc;
        }
        out
    }

    #[test]
    fn solves_complex_system() {
        let n = 16;
        let lower: Vec<_> = (0..n)
            .map(|i| Complex64::new(-0.5, 0.1 * i as f64 / n as f64))
            .collect();
        let upper: Vec<_> = (0..n)
            .map(|i| Complex64::new(-0.4, -0.05 * i as f64 / n as f64))
            .collect();
        let diag: Vec<_> = (0..n).map(|_| Complex64::new(2.0, 0.3)).collect();
        let d: Vec<_> = (0..n)
            .map(|i| Complex64::new(i as f64, 1.0 - i as f64))
            .collect();
        let x = solve_complex_tridiagonal(&lower, &diag, &upper, &d).unwrap();
        let ax = apply_tridiag(&lower, &diag, &upper, &x);
        for (p, q) in ax.iter().zip(&d) {
            assert!((*p - *q).abs() < 1e-10);
        }
    }

    #[test]
    fn one_by_one_system() {
        let x = solve_complex_tridiagonal(
            &[Complex64::ZERO],
            &[Complex64::new(2.0, 0.0)],
            &[Complex64::ZERO],
            &[Complex64::new(4.0, 2.0)],
        )
        .unwrap();
        assert!((x[0] - Complex64::new(2.0, 1.0)).abs() < 1e-14);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert!(solve_complex_tridiagonal(&[], &[], &[], &[]).is_err());
        let z = Complex64::ZERO;
        assert!(solve_complex_tridiagonal(&[z], &[z, z], &[z, z], &[z, z]).is_err());
    }

    #[test]
    fn detects_zero_pivot() {
        let z = Complex64::ZERO;
        let err =
            solve_complex_tridiagonal(&[z, z], &[z, Complex64::ONE], &[z, z], &[z, z]).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { pivot: 0 }));
    }
}
