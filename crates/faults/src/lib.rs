//! Deterministic fault injection for the NOFIS pipeline.
//!
//! Production rare-event runs die in production ways: a simulator returns
//! NaN for one corner of the parameter space, a worker thread panics, the
//! disk refuses a checkpoint write, the process is killed mid-stage. This
//! crate provides a *seeded, index-exact* way to reproduce those failures
//! so the recovery machinery (rollback, fallback ladder, checkpoint/resume)
//! can be exercised systematically instead of anecdotally.
//!
//! A [`FaultPlan`] is a list of [`FaultSpec`]s, each saying "at the `at`-th
//! visit of this fault's [`Site`], inject `kind`, `count` times in a row".
//! Host crates place a *seam* at each site:
//!
//! ```
//! use nofis_faults::{check, FaultKind, Site};
//!
//! // Zero-cost when disabled: `check` is one relaxed atomic load.
//! if let Some(FaultKind::OracleNan) = check(Site::OracleCall) {
//!     // return NaN instead of calling the simulator
//! }
//! ```
//!
//! Sites count their visits with per-site atomic counters inside the
//! installed plan, so injection points are exact and deterministic: the
//! `n`-th oracle call of a seeded run is the same call at any thread count
//! (the counter orders *injections*, and the workspace's determinism
//! contract orders the work itself).
//!
//! Plans are installed process-globally ([`install`] / [`clear`]) or from
//! the `NOFIS_FAULT_PLAN` environment variable ([`init_from_env`], called
//! by `Nofis::new`), using a tiny grammar:
//!
//! ```text
//! NOFIS_FAULT_PLAN="oracle_nan@120x5;ckpt_fail@2;kill@4000"
//! ```
//!
//! i.e. semicolon-separated `kind@index` entries with an optional `xCOUNT`
//! repeat. This crate is dependency-free (like `nofis-parallel`): hosts own
//! the side effects (telemetry events, the actual `panic!`/`exit`), this
//! crate only decides *where* and *when*.

#![deny(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Process exit code used by hosts honoring [`FaultKind::Kill`], chosen to
/// be distinguishable from panics (101) and clean exits in chaos tests.
pub const KILL_EXIT_CODE: i32 = 87;

/// An injection seam in the pipeline. Each site keeps its own visit
/// counter, so `at` indices in a [`FaultSpec`] are per-site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// One simulator evaluation (`value` / `value_grad`) through the
    /// budgeted oracle wrapper.
    OracleCall,
    /// One budget planning call (`grant` / `reserve`) on the budgeted
    /// oracle.
    BudgetGrant,
    /// One chunk claimed by a *helper* thread inside the parallel pool
    /// (the caller's lane is never targeted, so the panic always crosses
    /// the worker-to-caller re-raise path).
    WorkerChunk,
    /// One durable checkpoint write attempt.
    CkptWrite,
    /// One job admission decision in the `nofis-jobs` scheduler (visited
    /// once per `JobRunner::submit` call).
    JobSubmit,
    /// One job execution attempt starting on a scheduler worker (visited
    /// once per attempt, so retries re-visit the site).
    JobStart,
}

impl Site {
    const COUNT: usize = 6;

    fn index(self) -> usize {
        match self {
            Site::OracleCall => 0,
            Site::BudgetGrant => 1,
            Site::WorkerChunk => 2,
            Site::CkptWrite => 3,
            Site::JobSubmit => 4,
            Site::JobStart => 5,
        }
    }

    /// Stable machine-readable name (used in telemetry fields).
    pub fn as_str(self) -> &'static str {
        match self {
            Site::OracleCall => "oracle_call",
            Site::BudgetGrant => "budget_grant",
            Site::WorkerChunk => "worker_chunk",
            Site::CkptWrite => "ckpt_write",
            Site::JobSubmit => "job_submit",
            Site::JobStart => "job_start",
        }
    }
}

/// What to inject when a [`FaultSpec`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The simulator returns NaN (value and gradient).
    OracleNan,
    /// The simulator returns +∞ (value and gradient).
    OracleInf,
    /// The simulator panics mid-call.
    OraclePanic,
    /// The call budget is forced to exhaustion at a `grant`/`reserve`.
    BudgetExhaust,
    /// A pool helper thread panics while holding a claimed chunk.
    WorkerPanic,
    /// A checkpoint write fails with an I/O error.
    CkptWriteFail,
    /// The process exits immediately with [`KILL_EXIT_CODE`] (a simulated
    /// `kill -9` at an exact oracle-call index).
    Kill,
    /// A scheduler job panics as its attempt starts (a poisoned testcase;
    /// must never take down co-tenant jobs).
    JobPanic,
    /// A job's wall-clock deadline is treated as already expired when the
    /// attempt starts, forcing immediate checkpoint-based preemption.
    DeadlineStorm,
    /// Job admission is forced to see a full queue, exercising the
    /// load-shedding path.
    QueueOverflow,
}

impl FaultKind {
    /// The seam this fault fires at.
    pub fn site(self) -> Site {
        match self {
            FaultKind::OracleNan | FaultKind::OracleInf | FaultKind::OraclePanic => {
                Site::OracleCall
            }
            FaultKind::Kill => Site::OracleCall,
            FaultKind::BudgetExhaust => Site::BudgetGrant,
            FaultKind::WorkerPanic => Site::WorkerChunk,
            FaultKind::CkptWriteFail => Site::CkptWrite,
            FaultKind::QueueOverflow => Site::JobSubmit,
            FaultKind::JobPanic | FaultKind::DeadlineStorm => Site::JobStart,
        }
    }

    /// Stable machine-readable name — also the grammar keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::OracleNan => "oracle_nan",
            FaultKind::OracleInf => "oracle_inf",
            FaultKind::OraclePanic => "oracle_panic",
            FaultKind::BudgetExhaust => "budget_exhaust",
            FaultKind::WorkerPanic => "worker_panic",
            FaultKind::CkptWriteFail => "ckpt_fail",
            FaultKind::Kill => "kill",
            FaultKind::JobPanic => "job_panic",
            FaultKind::DeadlineStorm => "deadline_storm",
            FaultKind::QueueOverflow => "queue_overflow",
        }
    }

    fn parse(s: &str) -> Option<FaultKind> {
        Some(match s {
            "oracle_nan" => FaultKind::OracleNan,
            "oracle_inf" => FaultKind::OracleInf,
            "oracle_panic" => FaultKind::OraclePanic,
            "budget_exhaust" => FaultKind::BudgetExhaust,
            "worker_panic" => FaultKind::WorkerPanic,
            "ckpt_fail" => FaultKind::CkptWriteFail,
            "kill" => FaultKind::Kill,
            "job_panic" => FaultKind::JobPanic,
            "deadline_storm" => FaultKind::DeadlineStorm,
            "queue_overflow" => FaultKind::QueueOverflow,
            _ => return None,
        })
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One scheduled injection: fire `kind` at visits `at .. at + count` of its
/// site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// 0-based site-visit index of the first injection.
    pub at: u64,
    /// How many consecutive visits to inject (a "burst"; at least 1).
    pub count: u64,
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 1 {
            write!(f, "{}@{}", self.kind, self.at)
        } else {
            write!(f, "{}@{}x{}", self.kind, self.at, self.count)
        }
    }
}

/// A malformed fault-plan string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanError {
    message: String,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.message)
    }
}

impl std::error::Error for FaultPlanError {}

fn plan_err(message: impl Into<String>) -> FaultPlanError {
    FaultPlanError {
        message: message.into(),
    }
}

/// A deterministic injection schedule: specs plus one visit counter per
/// [`Site`]. Counters start at zero when the plan is installed.
#[derive(Debug, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    visits: [AtomicU64; Site::COUNT],
}

impl FaultPlan {
    /// Builds a plan from explicit specs.
    pub fn new(specs: Vec<FaultSpec>) -> FaultPlan {
        FaultPlan {
            specs,
            visits: Default::default(),
        }
    }

    /// Parses the `NOFIS_FAULT_PLAN` grammar: semicolon-separated
    /// `kind@index` entries with an optional `xCOUNT` suffix, e.g.
    /// `oracle_nan@120x5;kill@4000`. Whitespace around entries is ignored;
    /// an empty string is an empty (but valid) plan.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError`] on an unknown kind, a missing/garbled
    /// index, or a zero repeat count.
    pub fn parse(text: &str) -> Result<FaultPlan, FaultPlanError> {
        let mut specs = Vec::new();
        for entry in text.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (kind_str, rest) = entry
                .split_once('@')
                .ok_or_else(|| plan_err(format!("entry {entry:?} is missing '@index'")))?;
            let kind = FaultKind::parse(kind_str.trim()).ok_or_else(|| {
                plan_err(format!(
                    "unknown fault kind {:?} (expected one of oracle_nan, oracle_inf, \
                     oracle_panic, budget_exhaust, worker_panic, ckpt_fail, kill, \
                     job_panic, deadline_storm, queue_overflow)",
                    kind_str.trim()
                ))
            })?;
            let (at_str, count_str) = match rest.split_once('x') {
                Some((a, c)) => (a, Some(c)),
                None => (rest, None),
            };
            let at: u64 = at_str.trim().parse().map_err(|_| {
                plan_err(format!("bad index {:?} in entry {entry:?}", at_str.trim()))
            })?;
            let count: u64 = match count_str {
                Some(c) => c.trim().parse().map_err(|_| {
                    plan_err(format!("bad count {:?} in entry {entry:?}", c.trim()))
                })?,
                None => 1,
            };
            if count == 0 {
                return Err(plan_err(format!("zero count in entry {entry:?}")));
            }
            specs.push(FaultSpec { kind, at, count });
        }
        Ok(FaultPlan::new(specs))
    }

    /// The scheduled injections.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Records one visit of `site` and returns the fault to inject there,
    /// if any spec covers this visit index. Earlier specs win on overlap.
    pub fn check(&self, site: Site) -> Option<FaultKind> {
        let visit = self.visits[site.index()].fetch_add(1, Ordering::Relaxed);
        self.specs
            .iter()
            .find(|s| s.kind.site() == site && visit >= s.at && visit < s.at + s.count)
            .map(|s| s.kind)
    }

    /// Visits recorded at `site` since the plan was created/installed.
    pub fn visits(&self, site: Site) -> u64 {
        self.visits[site.index()].load(Ordering::Relaxed)
    }
}

/// Renders the grammar back out, so a plan round-trips through the
/// environment variable.
impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.specs.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Fast path: whether any plan is installed. One relaxed atomic load —
/// this is the entire cost of a disabled seam.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Records one visit of `site` against the installed plan (if any) and
/// returns the fault to inject. Always `None` when no plan is installed,
/// without touching any counter.
pub fn check(site: Site) -> Option<FaultKind> {
    if !active() {
        return None;
    }
    let guard = PLAN.read().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().and_then(|p| p.check(site))
}

/// Installs `plan` process-globally, replacing any previous plan and
/// resetting all site-visit counters (the plan carries its own).
pub fn install(plan: FaultPlan) -> Arc<FaultPlan> {
    let plan = Arc::new(plan);
    let mut guard = PLAN.write().unwrap_or_else(|e| e.into_inner());
    *guard = Some(Arc::clone(&plan));
    ACTIVE.store(true, Ordering::Relaxed);
    plan
}

/// Removes the installed plan; every seam returns to its zero-cost path.
pub fn clear() {
    let mut guard = PLAN.write().unwrap_or_else(|e| e.into_inner());
    ACTIVE.store(false, Ordering::Relaxed);
    *guard = None;
}

/// Installs a plan from the `NOFIS_FAULT_PLAN` environment variable, once
/// per process: the first call with the variable set parses and installs
/// it (returning `Ok(true)`); later calls — and calls without the variable
/// — are no-ops (`Ok(false)`). One-shot so that a pipeline constructed
/// several times (train + estimate + diagnostics) keeps one set of visit
/// counters for the whole process, which is what makes `at` indices exact.
///
/// # Errors
///
/// Returns [`FaultPlanError`] if the variable is set but malformed.
pub fn init_from_env() -> Result<bool, FaultPlanError> {
    let text = match std::env::var("NOFIS_FAULT_PLAN") {
        Ok(text) => text,
        Err(_) => return Ok(false),
    };
    let plan = FaultPlan::parse(&text)?;
    let mut guard = PLAN.write().unwrap_or_else(|e| e.into_inner());
    if ENV_INSTALLED.swap(true, Ordering::SeqCst) {
        return Ok(false);
    }
    *guard = Some(Arc::new(plan));
    ACTIVE.store(true, Ordering::Relaxed);
    Ok(true)
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static ENV_INSTALLED: AtomicBool = AtomicBool::new(false);
static PLAN: RwLock<Option<Arc<FaultPlan>>> = RwLock::new(None);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_grammar() {
        let plan = FaultPlan::parse(" oracle_nan@120x5; kill@4000 ;;ckpt_fail@0 ").unwrap();
        assert_eq!(
            plan.specs(),
            &[
                FaultSpec {
                    kind: FaultKind::OracleNan,
                    at: 120,
                    count: 5
                },
                FaultSpec {
                    kind: FaultKind::Kill,
                    at: 4000,
                    count: 1
                },
                FaultSpec {
                    kind: FaultKind::CkptWriteFail,
                    at: 0,
                    count: 1
                },
            ]
        );
        assert_eq!(plan.to_string(), "oracle_nan@120x5;kill@4000;ckpt_fail@0");
        // Round-trips through its own Display.
        let again = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(again.specs(), plan.specs());
        assert!(FaultPlan::parse("").unwrap().specs().is_empty());
    }

    #[test]
    fn rejects_malformed_plans() {
        for bad in [
            "oracle_nan",       // missing @index
            "warp_core@3",      // unknown kind
            "oracle_nan@x",     // garbled index
            "oracle_nan@1x0",   // zero count
            "oracle_nan@1xtwo", // garbled count
            "kill@-1",          // negative index
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn fires_at_exact_visit_indices() {
        let plan = FaultPlan::parse("oracle_nan@2x2;budget_exhaust@1").unwrap();
        // Oracle site: visits 0,1 clean; 2,3 inject; 4 clean.
        assert_eq!(plan.check(Site::OracleCall), None);
        assert_eq!(plan.check(Site::OracleCall), None);
        assert_eq!(plan.check(Site::OracleCall), Some(FaultKind::OracleNan));
        assert_eq!(plan.check(Site::OracleCall), Some(FaultKind::OracleNan));
        assert_eq!(plan.check(Site::OracleCall), None);
        // Sites count independently.
        assert_eq!(plan.check(Site::BudgetGrant), None);
        assert_eq!(
            plan.check(Site::BudgetGrant),
            Some(FaultKind::BudgetExhaust)
        );
        assert_eq!(plan.visits(Site::OracleCall), 5);
        assert_eq!(plan.visits(Site::BudgetGrant), 2);
        assert_eq!(plan.visits(Site::CkptWrite), 0);
    }

    #[test]
    fn global_registry_is_zero_cost_when_clear() {
        clear();
        assert!(!active());
        assert_eq!(check(Site::OracleCall), None);
        let plan = install(FaultPlan::parse("ckpt_fail@0").unwrap());
        assert!(active());
        assert_eq!(check(Site::CkptWrite), Some(FaultKind::CkptWriteFail));
        assert_eq!(check(Site::CkptWrite), None);
        assert_eq!(plan.visits(Site::CkptWrite), 2);
        clear();
        // Counters are gone with the plan; a fresh install starts at zero.
        let plan = install(FaultPlan::parse("ckpt_fail@0").unwrap());
        assert_eq!(check(Site::CkptWrite), Some(FaultKind::CkptWriteFail));
        assert_eq!(plan.visits(Site::CkptWrite), 1);
        clear();
    }

    #[test]
    fn kinds_map_to_their_sites() {
        for (kind, site) in [
            (FaultKind::OracleNan, Site::OracleCall),
            (FaultKind::OracleInf, Site::OracleCall),
            (FaultKind::OraclePanic, Site::OracleCall),
            (FaultKind::Kill, Site::OracleCall),
            (FaultKind::BudgetExhaust, Site::BudgetGrant),
            (FaultKind::WorkerPanic, Site::WorkerChunk),
            (FaultKind::CkptWriteFail, Site::CkptWrite),
            (FaultKind::JobPanic, Site::JobStart),
            (FaultKind::DeadlineStorm, Site::JobStart),
            (FaultKind::QueueOverflow, Site::JobSubmit),
        ] {
            assert_eq!(kind.site(), site);
            // Every kind's keyword parses back to itself.
            assert_eq!(FaultKind::parse(kind.as_str()), Some(kind));
        }
    }
}
