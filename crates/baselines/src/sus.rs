use crate::RareEventEstimator;
use nofis_prob::{quantile, LimitState, StandardGaussian};
use rand::{Rng, RngCore, SeedableRng};
use rand_distr::StandardNormal;

/// Subset simulation (Au & Beck 2001; applied to circuits by Sun & Li,
/// ICCAD'14 — Table 1 baseline "SUS").
///
/// Levels are chosen adaptively as the `p0`-quantile of the current
/// population; conditional samples are generated with the component-wise
/// *modified Metropolis* algorithm, whose per-component acceptance uses
/// the standard-Gaussian prior ratio and whose candidate is accepted only
/// if it stays inside the current intermediate failure region (one `g`
/// call per candidate).
///
/// # Example
///
/// ```
/// use nofis_baselines::{RareEventEstimator, SusEstimator};
/// use nofis_prob::LimitState;
/// use rand::SeedableRng;
///
/// struct Tail;
/// impl LimitState for Tail {
///     fn dim(&self) -> usize { 2 }
///     fn value(&self, x: &[f64]) -> f64 { 3.5 - x[0] }
/// }
///
/// let sus = SusEstimator::new(2_000, 0.1, 8);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let p = sus.estimate(&Tail, &mut rng);
/// let golden: f64 = 2.33e-4; // 1 - Φ(3.5)
/// assert!((p.ln() - golden.ln()).abs() < 0.7, "p = {p}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SusEstimator {
    n_per_level: usize,
    p0: f64,
    max_levels: usize,
    /// Standard deviation of the component-wise Metropolis proposal.
    spread: f64,
}

impl SusEstimator {
    /// Creates a subset-simulation estimator.
    ///
    /// # Panics
    ///
    /// Panics if `n_per_level < 10`, `p0` is outside `(0, 1)`, or
    /// `max_levels == 0`.
    pub fn new(n_per_level: usize, p0: f64, max_levels: usize) -> Self {
        assert!(n_per_level >= 10, "need at least 10 samples per level");
        assert!(p0 > 0.0 && p0 < 1.0, "p0 must be in (0, 1)");
        assert!(max_levels > 0, "need at least one level");
        SusEstimator {
            n_per_level,
            p0,
            max_levels,
            spread: 0.8,
        }
    }

    /// Sets the Metropolis proposal spread (default 0.8).
    ///
    /// # Panics
    ///
    /// Panics if `spread` is not positive.
    pub fn with_spread(mut self, spread: f64) -> Self {
        assert!(spread > 0.0, "spread must be positive");
        self.spread = spread;
        self
    }

    /// Simulator calls this configuration consumes in the worst case.
    pub fn max_budget(&self) -> u64 {
        (self.n_per_level * self.max_levels) as u64
    }
}

impl RareEventEstimator for SusEstimator {
    fn method_name(&self) -> &'static str {
        "SUS"
    }

    fn estimate(&self, limit_state: &(dyn LimitState + Sync), rng: &mut dyn RngCore) -> f64 {
        let dim = limit_state.dim();
        let base = StandardGaussian::new(dim);
        let n = self.n_per_level;

        // Level 0: i.i.d. sampling from p.
        let mut xs: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut gs: Vec<f64> = Vec::with_capacity(n);
        let mut rng_box = RngShim(rng);
        for _ in 0..n {
            let x = base.sample(&mut rng_box);
            gs.push(limit_state.value(&x));
            xs.push(x);
        }

        let mut log_prob = 0.0;
        for _level in 0..self.max_levels {
            let hits = gs.iter().filter(|&&g| g <= 0.0).count();
            if hits as f64 >= self.p0 * n as f64 {
                // Final level: direct estimate of the remaining factor.
                return (log_prob + (hits as f64 / n as f64).ln()).exp();
            }
            // Intermediate threshold at the p0-quantile.
            let b = quantile(&gs, self.p0);
            if b <= 0.0 {
                // The quantile already reaches the failure region (rounding
                // edge of the `hits >= p0·n` branch): finish directly.
                return if hits == 0 {
                    0.0
                } else {
                    (log_prob + (hits as f64 / n as f64).ln()).exp()
                };
            }
            log_prob += self.p0.ln();

            // Seeds: the samples inside the new intermediate region.
            let mut seeds: Vec<(Vec<f64>, f64)> = xs
                .iter()
                .cloned()
                .zip(gs.iter().copied())
                .filter(|(_, g)| *g <= b)
                .collect();
            if seeds.is_empty() {
                return 0.0;
            }
            // Deterministically thin to the expected seed count.
            let target_seeds = ((self.p0 * n as f64).round() as usize).max(1);
            seeds.truncate(target_seeds);

            // Modified Metropolis: grow chains from the seeds until the
            // population is refilled.
            let mut new_xs: Vec<Vec<f64>> = Vec::with_capacity(n);
            let mut new_gs: Vec<f64> = Vec::with_capacity(n);
            let chain_len = n / seeds.len() + 1;
            'outer: for (seed_x, seed_g) in &seeds {
                let mut cur = seed_x.clone();
                let mut cur_g = *seed_g;
                for _ in 0..chain_len {
                    // Component-wise candidate with prior-ratio acceptance.
                    let mut cand = cur.clone();
                    for c in cand.iter_mut() {
                        let step: f64 = rng_box.sample(StandardNormal);
                        let proposal = *c + self.spread * step;
                        let ratio = (-0.5 * (proposal * proposal - *c * *c)).exp();
                        if rng_box.gen::<f64>() < ratio.min(1.0) {
                            *c = proposal;
                        }
                    }
                    if cand != cur {
                        let g = limit_state.value(&cand);
                        if g <= b {
                            cur = cand;
                            cur_g = g;
                        }
                    }
                    new_xs.push(cur.clone());
                    new_gs.push(cur_g);
                    if new_xs.len() == n {
                        break 'outer;
                    }
                }
            }
            xs = new_xs;
            gs = new_gs;
        }

        // Budget exhausted before reaching the failure event.
        let hits = gs.iter().filter(|&&g| g <= 0.0).count();
        if hits == 0 {
            0.0
        } else {
            (log_prob + (hits as f64 / gs.len() as f64).ln()).exp()
        }
    }
}

/// Adapter so `&mut dyn RngCore` satisfies `impl Rng` bounds.
pub(crate) struct RngShim<'a>(&'a mut dyn RngCore);

/// Wraps a dynamic RNG so it can be passed where `impl Rng` is expected.
pub(crate) fn rng_shim(rng: &mut dyn RngCore) -> RngShim<'_> {
    RngShim(rng)
}

impl RngCore for RngShim<'_> {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.0.try_fill_bytes(dest)
    }
}

/// Convenience: run SUS once with a fresh deterministic RNG (used by
/// calibration tooling).
pub fn sus_with_seed(
    limit_state: &(dyn LimitState + Sync),
    n_per_level: usize,
    max_levels: usize,
    seed: u64,
) -> f64 {
    let sus = SusEstimator::new(n_per_level, 0.1, max_levels);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    sus.estimate(limit_state, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nofis_prob::{log_error, normal_cdf, CountingOracle};
    use rand::rngs::StdRng;

    struct HalfSpace {
        beta: f64,
    }
    impl LimitState for HalfSpace {
        fn dim(&self) -> usize {
            3
        }
        fn value(&self, x: &[f64]) -> f64 {
            self.beta - x[0]
        }
    }

    #[test]
    fn estimates_deep_tail() {
        let ls = HalfSpace { beta: 4.0 }; // P ≈ 3.17e-5
        let golden = 1.0 - normal_cdf(4.0);
        let sus = SusEstimator::new(2_000, 0.1, 10);
        let mut errs = Vec::new();
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = sus.estimate(&ls, &mut rng);
            errs.push(log_error(p, golden));
        }
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean_err < 0.6, "mean log error {mean_err}, errs {errs:?}");
    }

    #[test]
    fn respects_budget_bound() {
        let ls = HalfSpace { beta: 4.0 };
        let oracle = CountingOracle::new(&ls);
        let sus = SusEstimator::new(500, 0.1, 6);
        let mut rng = StdRng::seed_from_u64(3);
        let _ = sus.estimate(&oracle, &mut rng);
        assert!(oracle.calls() <= sus.max_budget() + 500);
    }

    #[test]
    fn easy_event_short_circuits() {
        struct Common;
        impl LimitState for Common {
            fn dim(&self) -> usize {
                1
            }
            fn value(&self, x: &[f64]) -> f64 {
                1.0 - x[0] // P ≈ 0.159
            }
        }
        let sus = SusEstimator::new(1_000, 0.1, 4);
        let mut rng = StdRng::seed_from_u64(0);
        let p = sus.estimate(&Common, &mut rng);
        assert!((p - 0.159).abs() < 0.05);
    }

    #[test]
    fn impossible_event_returns_zero_or_tiny() {
        struct Impossible;
        impl LimitState for Impossible {
            fn dim(&self) -> usize {
                2
            }
            fn value(&self, _: &[f64]) -> f64 {
                1.0 // never fails
            }
        }
        let sus = SusEstimator::new(200, 0.1, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let p = sus.estimate(&Impossible, &mut rng);
        assert!(p <= 1e-3, "p = {p}");
    }

    #[test]
    #[should_panic(expected = "p0 must be")]
    fn rejects_bad_p0() {
        let _ = SusEstimator::new(100, 1.5, 3);
    }
}
