//! The six baseline rare-event estimators of the NOFIS paper's Table 1.
//!
//! | name | method | module |
//! |------|--------|--------|
//! | MC | plain Monte Carlo | [`McEstimator`] |
//! | SIR | neural-surrogate regression | [`SirEstimator`] |
//! | SUC | subset classification | [`SucEstimator`] |
//! | SUS | subset simulation (modified Metropolis) | [`SusEstimator`] |
//! | SSS | scaled-sigma sampling | [`SssEstimator`] |
//! | Adapt-IS | cross-entropy adaptive IS | [`AdaptIsEstimator`] |
//! | (extra) Line sampling | reference [18]'s method | [`LineSamplingEstimator`] |
//!
//! All implement [`RareEventEstimator`] and draw their entire simulator
//! budget through the provided [`nofis_prob::LimitState`] — wrap it in a
//! [`nofis_prob::CountingOracle`] to meter calls exactly as the paper
//! reports them.

#![deny(missing_docs)]

mod adaptis;
mod estimator;
mod linesampling;
mod mc;
mod sir;
mod sss;
mod suc;
mod sus;

pub use adaptis::AdaptIsEstimator;
pub use estimator::RareEventEstimator;
pub use linesampling::LineSamplingEstimator;
pub use mc::McEstimator;
pub use sir::SirEstimator;
pub use sss::SssEstimator;
pub use suc::SucEstimator;
pub use sus::{sus_with_seed, SusEstimator};
