use crate::{sus::rng_shim, RareEventEstimator};
use nofis_prob::{normal_cdf, LimitState, StandardGaussian};
use rand::RngCore;

/// Line sampling (Koutsourelakis et al.; applied with active learning by
/// Song et al., MSSP 2021 — the paper's reference [18] and the source of
/// the oscillator test case).
///
/// An *important direction* `α` is estimated from the limit-state gradient
/// at the origin, then each sample is a line parallel to `α` through a
/// random point of the orthogonal subspace: the per-line failure
/// probability `1 − Φ(β)` is exact once the crossing distance `β` is
/// root-found, making the estimator exact for linear limit states and
/// low-variance for mildly curved ones. Not part of the paper's Table 1
/// columns, but included as the natural seventh baseline given reference
/// [18].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineSamplingEstimator {
    n_lines: usize,
    max_root_iters: usize,
}

impl LineSamplingEstimator {
    /// Creates the estimator with `n_lines` lines; each line spends up to
    /// `~log2(40/1e-3)+2 ≈ 18` simulator calls on bisection.
    ///
    /// # Panics
    ///
    /// Panics if `n_lines == 0`.
    pub fn new(n_lines: usize) -> Self {
        assert!(n_lines > 0, "need at least one line");
        LineSamplingEstimator {
            n_lines,
            max_root_iters: 40,
        }
    }

    /// Finds the smallest `c ∈ (0, c_max]` with `g(z + c·α) ≤ 0` by coarse
    /// scan plus bisection; returns `None` if the line never fails.
    fn crossing(
        limit_state: &(dyn LimitState + Sync),
        z: &[f64],
        alpha: &[f64],
        max_iters: usize,
    ) -> Option<f64> {
        let point =
            |c: f64| -> Vec<f64> { z.iter().zip(alpha).map(|(&zi, &ai)| zi + c * ai).collect() };
        // Coarse scan out to 8 sigma.
        let mut lo = 0.0;
        let mut g_lo = limit_state.value(&point(0.0));
        if g_lo <= 0.0 {
            return Some(0.0);
        }
        let mut hi = None;
        for k in 1..=8 {
            let c = k as f64;
            let g = limit_state.value(&point(c));
            if g <= 0.0 {
                hi = Some(c);
                break;
            }
            lo = c;
            g_lo = g;
        }
        let mut hi = hi?;
        let _ = g_lo;
        // Bisection to ~1e-3 sigma resolution.
        for _ in 0..max_iters {
            if hi - lo < 1e-3 {
                break;
            }
            let mid = 0.5 * (lo + hi);
            if limit_state.value(&point(mid)) <= 0.0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }
}

impl RareEventEstimator for LineSamplingEstimator {
    fn method_name(&self) -> &'static str {
        "LineSampling"
    }

    fn estimate(&self, limit_state: &(dyn LimitState + Sync), rng: &mut dyn RngCore) -> f64 {
        let dim = limit_state.dim();
        let base = StandardGaussian::new(dim);
        let mut rng = rng_shim(rng);

        // Important direction: descend the limit state (one gradient call).
        let (_, grad) = limit_state.value_grad(&vec![0.0; dim]);
        let norm: f64 = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        if norm == 0.0 {
            return 0.0; // flat limit state at the origin: no direction
        }
        let alpha: Vec<f64> = grad.iter().map(|g| -g / norm).collect();

        let mut acc = 0.0;
        for _ in 0..self.n_lines {
            // Orthogonal-subspace sample: project out the α component.
            let mut z = base.sample(&mut rng);
            let dot: f64 = z.iter().zip(&alpha).map(|(a, b)| a * b).sum();
            for (zi, ai) in z.iter_mut().zip(&alpha) {
                *zi -= dot * ai;
            }
            if let Some(beta) = Self::crossing(limit_state, &z, &alpha, self.max_root_iters) {
                acc += 1.0 - normal_cdf(beta);
            }
        }
        acc / self.n_lines as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nofis_prob::{log_error, CountingOracle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct HalfSpace {
        beta: f64,
    }
    impl LimitState for HalfSpace {
        fn dim(&self) -> usize {
            4
        }
        fn value(&self, x: &[f64]) -> f64 {
            self.beta - x[0]
        }
        fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
            (self.beta - x[0], vec![-1.0, 0.0, 0.0, 0.0])
        }
    }

    #[test]
    fn exact_on_linear_limit_state() {
        // For a half-space, every line crosses at the same β: the estimator
        // is exact up to root-finding resolution, even with few lines.
        let ls = HalfSpace { beta: 4.5 }; // P ≈ 3.4e-6
        let golden = 1.0 - normal_cdf(4.5);
        let est = LineSamplingEstimator::new(25);
        let mut rng = StdRng::seed_from_u64(0);
        let p = est.estimate(&ls, &mut rng);
        assert!(
            log_error(p, golden) < 0.01,
            "p = {p:.3e} vs golden {golden:.3e}"
        );
    }

    #[test]
    fn budget_is_modest() {
        let ls = HalfSpace { beta: 4.0 };
        let oracle = CountingOracle::new(&ls);
        let est = LineSamplingEstimator::new(50);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = est.estimate(&oracle, &mut rng);
        // 1 gradient call + ≤ (8 scan + 40 bisection) per line.
        assert!(oracle.calls() <= 1 + 50 * 48, "calls = {}", oracle.calls());
    }

    #[test]
    fn curved_boundary_stays_close() {
        // Spherical failure region far from the origin along x0.
        struct Bowl;
        impl LimitState for Bowl {
            fn dim(&self) -> usize {
                3
            }
            fn value(&self, x: &[f64]) -> f64 {
                // fails when inside a half-space with slight curvature
                4.0 + 0.05 * (x[1] * x[1] + x[2] * x[2]) - x[0]
            }
            fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
                (self.value(x), vec![-1.0, 0.1 * x[1], 0.1 * x[2]])
            }
        }
        // Golden: P = E[Φ̄(4 + 0.05·χ²₂)] ≈ Φ̄(4)·E[e^{-0.2 χ²₂}]
        //        = 3.17e-5 · 1/(1 + 0.4) ≈ 2.26e-5 (Mills-ratio approx).
        let golden = 2.26e-5;
        let est = LineSamplingEstimator::new(400);
        let mut rng = StdRng::seed_from_u64(3);
        let p = est.estimate(&Bowl, &mut rng);
        assert!(log_error(p, golden) < 0.5, "p = {p:.3e}");
    }

    #[test]
    fn never_failing_line_contributes_zero() {
        struct Never;
        impl LimitState for Never {
            fn dim(&self) -> usize {
                2
            }
            fn value(&self, _: &[f64]) -> f64 {
                1.0
            }
            fn value_grad(&self, _: &[f64]) -> (f64, Vec<f64>) {
                (1.0, vec![1.0, 0.0])
            }
        }
        let est = LineSamplingEstimator::new(10);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(est.estimate(&Never, &mut rng), 0.0);
    }
}
