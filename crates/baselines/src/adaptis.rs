use crate::{sus::rng_shim, RareEventEstimator};
use nofis_prob::{quantile, LimitState, LN_2PI};
use rand::{Rng, RngCore};
use rand_distr::StandardNormal;

/// Adaptive importance sampling via the cross-entropy method with a
/// diagonal Gaussian proposal (Table 1 baseline "Adapt-IS", after the
/// mixture/adaptive IS line of Kanj et al. and Shi et al.).
///
/// Each round draws from the current proposal, selects the elite fraction
/// closest to (or inside) the failure region, and refits the proposal's
/// mean and per-coordinate variance to the likelihood-ratio-weighted
/// elites. The final round's proposal drives a standard IS estimate.
///
/// A single adaptive Gaussian is the classic choice and — matching the
/// paper — it degrades sharply in high dimensions and on multi-region
/// failure sets (weight degeneracy), which Table 1 shows as Adapt-IS's
/// large errors on Levy, Powell, Charge Pump and Y-branch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptIsEstimator {
    n_per_round: usize,
    rounds: usize,
    elite_fraction: f64,
    n_final: usize,
}

impl AdaptIsEstimator {
    /// Creates the estimator: `rounds` adaptation rounds of
    /// `n_per_round` samples, then `n_final` estimation samples.
    ///
    /// # Panics
    ///
    /// Panics if any budget is zero or `elite_fraction` is outside `(0, 1)`.
    pub fn new(n_per_round: usize, rounds: usize, n_final: usize) -> Self {
        assert!(n_per_round >= 10, "need at least 10 samples per round");
        assert!(rounds > 0, "need at least one adaptation round");
        assert!(n_final > 0, "need a final estimation budget");
        AdaptIsEstimator {
            n_per_round,
            rounds,
            elite_fraction: 0.1,
            n_final,
        }
    }

    /// Total simulator calls consumed.
    pub fn budget(&self) -> u64 {
        (self.n_per_round * self.rounds + self.n_final) as u64
    }
}

/// Diagonal Gaussian helper.
#[derive(Debug, Clone)]
struct DiagGaussian {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl DiagGaussian {
    fn standard(dim: usize) -> Self {
        DiagGaussian {
            mean: vec![0.0; dim],
            std: vec![1.0; dim],
        }
    }

    fn sample(&self, rng: &mut impl Rng) -> Vec<f64> {
        self.mean
            .iter()
            .zip(&self.std)
            .map(|(&m, &s)| {
                let z: f64 = rng.sample(StandardNormal);
                m + s * z
            })
            .collect()
    }

    fn log_density(&self, x: &[f64]) -> f64 {
        let mut acc = -0.5 * x.len() as f64 * LN_2PI;
        for ((&v, &m), &s) in x.iter().zip(&self.mean).zip(&self.std) {
            let z = (v - m) / s;
            acc -= s.ln() + 0.5 * z * z;
        }
        acc
    }
}

fn base_log_density(x: &[f64]) -> f64 {
    let sq: f64 = x.iter().map(|v| v * v).sum();
    -0.5 * x.len() as f64 * LN_2PI - 0.5 * sq
}

impl RareEventEstimator for AdaptIsEstimator {
    fn method_name(&self) -> &'static str {
        "Adapt-IS"
    }

    fn estimate(&self, limit_state: &(dyn LimitState + Sync), rng: &mut dyn RngCore) -> f64 {
        let dim = limit_state.dim();
        let mut rng = rng_shim(rng);
        let mut proposal = DiagGaussian::standard(dim);

        for _ in 0..self.rounds {
            // Draw and score a round.
            let mut samples = Vec::with_capacity(self.n_per_round);
            let mut scores = Vec::with_capacity(self.n_per_round);
            for _ in 0..self.n_per_round {
                let x = proposal.sample(&mut rng);
                scores.push(limit_state.value(&x));
                samples.push(x);
            }
            // Elite threshold: the elite_fraction quantile of g, but never
            // above 0 once the failure region is reachable.
            let thr = quantile(&scores, self.elite_fraction).max(0.0);
            let elites: Vec<(&Vec<f64>, f64)> = samples
                .iter()
                .zip(&scores)
                .filter(|(_, &g)| g <= thr)
                .map(|(x, _)| {
                    let lw = base_log_density(x) - proposal.log_density(x);
                    (x, lw)
                })
                .collect();
            if elites.is_empty() {
                continue;
            }
            // Elite statistics. Likelihood-ratio weights are tempered: raw
            // p/q weights degenerate onto the single elite nearest the
            // origin and stall the adaptation, while unweighted elites bias
            // the intermediate proposals — a mild tempering is the usual
            // practical compromise (only the final estimator needs exact
            // weights for unbiasedness).
            const TEMPER: f64 = 0.3;
            let max_lw = elites
                .iter()
                .map(|(_, lw)| *lw)
                .fold(f64::NEG_INFINITY, f64::max);
            let weights: Vec<f64> = elites
                .iter()
                .map(|(_, lw)| (TEMPER * (lw - max_lw)).exp())
                .collect();
            let wsum: f64 = weights.iter().sum();
            let mut mean = vec![0.0; dim];
            for ((x, _), &w) in elites.iter().zip(&weights) {
                for (m, &v) in mean.iter_mut().zip(x.iter()) {
                    *m += w * v;
                }
            }
            for m in &mut mean {
                *m /= wsum;
            }
            let mut var = vec![0.0; dim];
            for ((x, _), &w) in elites.iter().zip(&weights) {
                for ((s, &v), &m) in var.iter_mut().zip(x.iter()).zip(&mean) {
                    *s += w * (v - m) * (v - m);
                }
            }
            for s in &mut var {
                *s = (*s / wsum).max(1e-4);
            }
            // Standard CE smoothing keeps exploration alive and prevents
            // premature variance collapse.
            const ALPHA: f64 = 0.8;
            const STD_FLOOR: f64 = 0.5;
            let smoothed_mean: Vec<f64> = mean
                .iter()
                .zip(&proposal.mean)
                .map(|(&new, &old)| ALPHA * new + (1.0 - ALPHA) * old)
                .collect();
            let smoothed_std: Vec<f64> = var
                .iter()
                .zip(&proposal.std)
                .map(|(&v, &old)| (ALPHA * v.sqrt() + (1.0 - ALPHA) * old).max(STD_FLOOR))
                .collect();
            proposal = DiagGaussian {
                mean: smoothed_mean,
                std: smoothed_std,
            };
        }

        // Final IS estimate with the adapted proposal.
        let mut acc = 0.0;
        for _ in 0..self.n_final {
            let x = proposal.sample(&mut rng);
            if limit_state.value(&x) <= 0.0 {
                acc += (base_log_density(&x) - proposal.log_density(&x)).exp();
            }
        }
        acc / self.n_final as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nofis_prob::{log_error, normal_cdf, CountingOracle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct HalfSpace {
        beta: f64,
    }
    impl LimitState for HalfSpace {
        fn dim(&self) -> usize {
            3
        }
        fn value(&self, x: &[f64]) -> f64 {
            self.beta - x[0]
        }
    }

    #[test]
    fn accurate_on_unimodal_low_dim() {
        let ls = HalfSpace { beta: 4.0 };
        let golden = 1.0 - normal_cdf(4.0);
        let ais = AdaptIsEstimator::new(1_000, 6, 2_000);
        let mut errs = Vec::new();
        for seed in 0..3 {
            let mut rng = StdRng::seed_from_u64(seed);
            errs.push(log_error(ais.estimate(&ls, &mut rng), golden));
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean < 0.5, "mean log error {mean}, errs {errs:?}");
    }

    #[test]
    fn budget_is_exact() {
        let ls = HalfSpace { beta: 4.0 };
        let oracle = CountingOracle::new(&ls);
        let ais = AdaptIsEstimator::new(500, 4, 1_000);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = ais.estimate(&oracle, &mut rng);
        assert_eq!(oracle.calls(), ais.budget());
    }

    #[test]
    fn struggles_on_two_modes() {
        // Two symmetric failure disks: a single Gaussian collapses onto one
        // mode and underestimates by roughly 2x (or worse).
        struct TwoModes;
        impl LimitState for TwoModes {
            fn dim(&self) -> usize {
                2
            }
            fn value(&self, x: &[f64]) -> f64 {
                let d1 = (x[0] - 3.5).powi(2) + x[1].powi(2);
                let d2 = (x[0] + 3.5).powi(2) + x[1].powi(2);
                d1.min(d2) - 1.0
            }
        }
        let ais = AdaptIsEstimator::new(1_000, 6, 2_000);
        let mut rng = StdRng::seed_from_u64(5);
        let p = ais.estimate(&TwoModes, &mut rng);
        // Just check it runs and produces a plausible (possibly biased)
        // small probability.
        assert!(p < 1e-2);
    }
}
