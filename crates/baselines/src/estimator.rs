use nofis_prob::LimitState;
use rand::RngCore;

/// A rare-event probability estimator, the common interface of the six
/// baselines (and, via an adapter in the benchmark harness, NOFIS itself).
///
/// Implementations draw their entire simulator budget through `limit_state`
/// — wrap it in a [`CountingOracle`](nofis_prob::CountingOracle) to meter
/// calls.
pub trait RareEventEstimator {
    /// Short method name as printed in Table 1.
    fn method_name(&self) -> &'static str;

    /// Estimates `P[g(x) ≤ 0]`.
    fn estimate(&self, limit_state: &(dyn LimitState + Sync), rng: &mut dyn RngCore) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Trivial;
    impl RareEventEstimator for Trivial {
        fn method_name(&self) -> &'static str {
            "trivial"
        }
        fn estimate(&self, _: &(dyn LimitState + Sync), _: &mut dyn RngCore) -> f64 {
            0.5
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let boxed: Box<dyn RareEventEstimator> = Box::new(Trivial);
        assert_eq!(boxed.method_name(), "trivial");
    }
}
