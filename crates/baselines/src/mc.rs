use crate::RareEventEstimator;
use nofis_prob::{monte_carlo, LimitState};
use rand::RngCore;

/// Plain Monte Carlo (Table 1 baseline "MC").
///
/// # Example
///
/// ```
/// use nofis_baselines::{McEstimator, RareEventEstimator};
/// use nofis_prob::LimitState;
/// use rand::SeedableRng;
///
/// struct Tail;
/// impl LimitState for Tail {
///     fn dim(&self) -> usize { 1 }
///     fn value(&self, x: &[f64]) -> f64 { 1.0 - x[0] }
/// }
///
/// let mc = McEstimator::new(20_000);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let p = mc.estimate(&Tail, &mut rng);
/// assert!((p - 0.159).abs() < 0.02); // 1 - Φ(1)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McEstimator {
    samples: usize,
}

impl McEstimator {
    /// Creates an estimator that spends exactly `samples` calls.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn new(samples: usize) -> Self {
        assert!(samples > 0, "MC needs at least one sample");
        McEstimator { samples }
    }

    /// The configured sample budget.
    pub fn samples(&self) -> usize {
        self.samples
    }
}

impl RareEventEstimator for McEstimator {
    fn method_name(&self) -> &'static str {
        "MC"
    }

    fn estimate(&self, limit_state: &(dyn LimitState + Sync), rng: &mut dyn RngCore) -> f64 {
        monte_carlo(&limit_state, 0.0, self.samples, rng).estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nofis_prob::CountingOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Half;
    impl LimitState for Half {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, x: &[f64]) -> f64 {
            -x[0] // fails when x0 >= 0: probability 1/2
        }
    }

    #[test]
    fn estimates_half() {
        let mc = McEstimator::new(10_000);
        let oracle = CountingOracle::new(&Half);
        let mut rng = StdRng::seed_from_u64(1);
        let p = mc.estimate(&oracle, &mut rng);
        assert!((p - 0.5).abs() < 0.02);
        assert_eq!(oracle.calls(), 10_000);
    }

    #[test]
    fn rare_event_often_yields_zero() {
        struct VeryRare;
        impl LimitState for VeryRare {
            fn dim(&self) -> usize {
                1
            }
            fn value(&self, x: &[f64]) -> f64 {
                6.0 - x[0]
            }
        }
        let mc = McEstimator::new(1_000);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(mc.estimate(&VeryRare, &mut rng), 0.0);
    }
}
