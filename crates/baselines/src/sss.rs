use crate::{sus::rng_shim, RareEventEstimator};
use nofis_linalg::{lstsq::lstsq, Matrix};
use nofis_prob::LimitState;
use rand::{Rng, RngCore};
use rand_distr::StandardNormal;

/// Scaled-sigma sampling (Sun, Li, Liu, Luo, Gu — TCAD 2015; Table 1
/// baseline "SSS").
///
/// Failure probabilities are measured at several inflated sigmas
/// `s > 1` (where failures are common), the analytic model
/// `ln P(s) = α + β·ln(s) − γ/s²` is fit by least squares, and the rare
/// probability is read off by extrapolating to `s = 1`. SSS is robust but
/// model-biased — in Table 1 it produces order-of-magnitude (not
/// fractional) accuracy, and that is what this implementation reproduces.
#[derive(Debug, Clone, PartialEq)]
pub struct SssEstimator {
    scales: Vec<f64>,
    samples_per_scale: usize,
}

impl SssEstimator {
    /// Creates the estimator with the given total budget, split evenly
    /// over the default scale set `{1.5, 2.0, 2.5, 3.0, 3.5, 4.0}`.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is smaller than 60 (10 samples per scale).
    pub fn new(budget: usize) -> Self {
        let scales = vec![1.5, 2.0, 2.5, 3.0, 3.5, 4.0];
        assert!(
            budget >= 10 * scales.len(),
            "SSS needs at least 10 samples per scale"
        );
        let samples_per_scale = budget / scales.len();
        SssEstimator {
            scales,
            samples_per_scale,
        }
    }

    /// Creates the estimator with explicit scales.
    ///
    /// # Panics
    ///
    /// Panics if fewer than three scales (the model has three parameters)
    /// or any scale is `<= 1`.
    pub fn with_scales(scales: Vec<f64>, samples_per_scale: usize) -> Self {
        assert!(scales.len() >= 3, "SSS needs at least three scales");
        assert!(scales.iter().all(|&s| s > 1.0), "SSS scales must exceed 1");
        assert!(
            samples_per_scale >= 10,
            "need at least 10 samples per scale"
        );
        SssEstimator {
            scales,
            samples_per_scale,
        }
    }

    /// Total simulator calls consumed.
    pub fn budget(&self) -> u64 {
        (self.scales.len() * self.samples_per_scale) as u64
    }
}

impl RareEventEstimator for SssEstimator {
    fn method_name(&self) -> &'static str {
        "SSS"
    }

    fn estimate(&self, limit_state: &(dyn LimitState + Sync), rng: &mut dyn RngCore) -> f64 {
        let dim = limit_state.dim();
        let mut rng = rng_shim(rng);
        let mut points: Vec<(f64, f64)> = Vec::new(); // (scale, ln P_s)
        let mut x = vec![0.0; dim];
        for &s in &self.scales {
            let mut hits = 0usize;
            for _ in 0..self.samples_per_scale {
                for v in &mut x {
                    let z: f64 = rng.sample(StandardNormal);
                    *v = s * z;
                }
                if limit_state.value(&x) <= 0.0 {
                    hits += 1;
                }
            }
            if hits >= 3 {
                let p_s = hits as f64 / self.samples_per_scale as f64;
                points.push((s, p_s.ln()));
            }
        }
        if points.len() < 3 {
            return 0.0; // model cannot be fit; SSS fails (— in Table 1)
        }

        // Fit ln P(s) = α + β ln s − γ / s².
        let rows = points.len();
        let mut design = Matrix::zeros(rows, 3);
        let mut y = Vec::with_capacity(rows);
        for (i, &(s, lnp)) in points.iter().enumerate() {
            design[(i, 0)] = 1.0;
            design[(i, 1)] = s.ln();
            design[(i, 2)] = -1.0 / (s * s);
            y.push(lnp);
        }
        match lstsq(&design, &y, 1e-9) {
            Ok(c) => {
                let ln_p1 = c[0] - c[2]; // s = 1: ln s = 0, −γ/s² = −γ
                ln_p1.exp().min(1.0)
            }
            Err(_) => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nofis_prob::{log_error, normal_cdf, CountingOracle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct HalfSpace {
        beta: f64,
    }
    impl LimitState for HalfSpace {
        fn dim(&self) -> usize {
            4
        }
        fn value(&self, x: &[f64]) -> f64 {
            self.beta - x[0]
        }
    }

    #[test]
    fn order_of_magnitude_accuracy_on_linear_case() {
        // For a half-space, P(s) = 1 − Φ(β/s); the SSS model is only an
        // approximation, so expect order-of-magnitude accuracy.
        let ls = HalfSpace { beta: 4.0 };
        let golden = 1.0 - normal_cdf(4.0); // 3.17e-5
        let sss = SssEstimator::new(30_000);
        let mut errs = Vec::new();
        for seed in 0..3 {
            let mut rng = StdRng::seed_from_u64(seed);
            errs.push(log_error(sss.estimate(&ls, &mut rng), golden));
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean < 2.5, "mean log error {mean}, errs {errs:?}");
    }

    #[test]
    fn budget_is_exact() {
        let ls = HalfSpace { beta: 4.0 };
        let oracle = CountingOracle::new(&ls);
        let sss = SssEstimator::new(6_000);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = sss.estimate(&oracle, &mut rng);
        assert_eq!(oracle.calls(), sss.budget());
    }

    #[test]
    fn unreachable_event_returns_zero() {
        struct Never;
        impl LimitState for Never {
            fn dim(&self) -> usize {
                2
            }
            fn value(&self, _: &[f64]) -> f64 {
                1.0
            }
        }
        let sss = SssEstimator::new(600);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(sss.estimate(&Never, &mut rng), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn rejects_sub_unity_scales() {
        let _ = SssEstimator::with_scales(vec![0.5, 2.0, 3.0], 100);
    }
}
