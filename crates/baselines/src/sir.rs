use crate::RareEventEstimator;
use nofis_autograd::Tensor;
use nofis_nn::{Regressor, TrainConfig};
use nofis_prob::{LimitState, StandardGaussian};
use rand::{RngCore, SeedableRng};

/// Simple regression (Table 1 baseline "SIR").
///
/// A neural surrogate of `g` is trained on `train_samples` simulator calls,
/// then the failure probability is the fraction of `eval_samples`
/// surrogate-evaluated base samples with `ĝ(x) ≤ 0`. The surrogate never
/// sees the deep tail, so — exactly as in the paper — SIR fails badly on
/// genuinely rare events.
///
/// The paper evaluates `N_eval = 10⁹` surrogate samples; our pure-Rust MLP
/// makes `10⁶–10⁷` the practical default, which only affects estimates
/// already below `1e-6` (where SIR is hopeless regardless). The deviation
/// is recorded in DESIGN.md/EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct SirEstimator {
    train_samples: usize,
    eval_samples: usize,
    hidden: Vec<usize>,
    train: TrainConfig,
}

impl SirEstimator {
    /// Creates the estimator (`train_samples` simulator calls,
    /// `eval_samples` free surrogate evaluations).
    ///
    /// # Panics
    ///
    /// Panics if either budget is zero.
    pub fn new(train_samples: usize, eval_samples: usize) -> Self {
        assert!(train_samples > 0, "need a training budget");
        assert!(eval_samples > 0, "need an evaluation budget");
        SirEstimator {
            train_samples,
            eval_samples,
            hidden: vec![32, 32],
            train: TrainConfig {
                epochs: 30,
                batch_size: 128,
                lr: 3e-3,
            },
        }
    }
}

impl RareEventEstimator for SirEstimator {
    fn method_name(&self) -> &'static str {
        "SIR"
    }

    fn estimate(&self, limit_state: &(dyn LimitState + Sync), rng: &mut dyn RngCore) -> f64 {
        let dim = limit_state.dim();
        let base = StandardGaussian::new(dim);
        let mut rng_shim = crate::sus::rng_shim(rng);

        // 1. Gather the labeled set (the entire simulator budget); the
        //    surrogate trains on a subsample cap for tractability (see
        //    EXPERIMENTS.md "known deviations").
        const TRAIN_CAP: usize = 6_000;
        let flat = base.sample_flat(self.train_samples, &mut rng_shim);
        let x_all = Tensor::from_vec(self.train_samples, dim, flat);
        let mut y_all = Vec::with_capacity(self.train_samples);
        for r in 0..self.train_samples {
            y_all.push(limit_state.value(x_all.row(r)));
        }
        let stride = (self.train_samples / TRAIN_CAP).max(1);
        let keep: Vec<usize> = (0..self.train_samples).step_by(stride).collect();
        let x = Tensor::from_fn(keep.len(), dim, |r, c| x_all[(keep[r], c)]);
        let y: Vec<f64> = keep.iter().map(|&r| y_all[r]).collect();

        // 2. Fit the surrogate (fixed internal seed: training randomness
        //    should not consume the caller's stream beyond sampling).
        let mut train_rng = rand::rngs::StdRng::seed_from_u64(0x51e5_7a11);
        let surrogate = Regressor::fit(&x, &y, &self.hidden, self.train, &mut train_rng);

        // 3. Count surrogate failures over a large evaluation population.
        let batch = 4_096;
        let mut hits = 0u64;
        let mut remaining = self.eval_samples;
        while remaining > 0 {
            let m = remaining.min(batch);
            let flat = base.sample_flat(m, &mut rng_shim);
            let xe = Tensor::from_vec(m, dim, flat);
            let preds = surrogate.predict(&xe);
            hits += preds.iter().filter(|&&v| v <= 0.0).count() as u64;
            remaining -= m;
        }
        hits as f64 / self.eval_samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nofis_prob::CountingOracle;
    use rand::rngs::StdRng;

    struct Moderate;
    impl LimitState for Moderate {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, x: &[f64]) -> f64 {
            2.0 - x[0] // P ≈ 2.28e-2: learnable from the bulk
        }
    }

    #[test]
    fn surrogate_recovers_moderate_probability() {
        let sir = SirEstimator::new(2_000, 100_000);
        let oracle = CountingOracle::new(&Moderate);
        let mut rng = StdRng::seed_from_u64(0);
        let p = sir.estimate(&oracle, &mut rng);
        assert_eq!(oracle.calls(), 2_000);
        assert!((p.ln() - 0.0228_f64.ln()).abs() < 0.7, "p = {p}");
    }

    #[test]
    fn rare_event_estimate_collapses() {
        struct VeryRare;
        impl LimitState for VeryRare {
            fn dim(&self) -> usize {
                2
            }
            fn value(&self, x: &[f64]) -> f64 {
                5.5 - x[0] // P ≈ 1.9e-8: no training point comes close
            }
        }
        let sir = SirEstimator::new(500, 50_000);
        let mut rng = StdRng::seed_from_u64(1);
        let p = sir.estimate(&VeryRare, &mut rng);
        // SIR should grossly misestimate (usually 0) — that is the point.
        assert!(p < 1e-3);
    }
}
