use crate::{sus::rng_shim, RareEventEstimator};
use nofis_autograd::Tensor;
use nofis_nn::{Classifier, TrainConfig};
use nofis_prob::{quantile, LimitState, StandardGaussian};
use rand::{Rng, RngCore, SeedableRng};
use rand_distr::StandardNormal;

/// Subset classification (Table 1 baseline "SUC").
///
/// The same nested-level structure as subset simulation, but the MCMC
/// machinery is replaced by neural classifiers: at each level a classifier
/// is trained on all `(x, g(x) ≤ b)` data collected so far and used to
/// screen candidate points (seed perturbations) before spending simulator
/// calls on them. The classifier-guided acceptance makes the conditional
/// estimates biased — as the paper's Table 1 shows, SUC lands between MC
/// and SUS in accuracy.
#[derive(Debug, Clone)]
pub struct SucEstimator {
    n_per_level: usize,
    p0: f64,
    max_levels: usize,
    spread: f64,
}

impl SucEstimator {
    /// Creates a subset-classification estimator.
    ///
    /// # Panics
    ///
    /// Panics if `n_per_level < 10`, `p0` is outside `(0, 1)`, or
    /// `max_levels == 0`.
    pub fn new(n_per_level: usize, p0: f64, max_levels: usize) -> Self {
        assert!(n_per_level >= 10, "need at least 10 samples per level");
        assert!(p0 > 0.0 && p0 < 1.0, "p0 must be in (0, 1)");
        assert!(max_levels > 0, "need at least one level");
        SucEstimator {
            n_per_level,
            p0,
            max_levels,
            spread: 0.7,
        }
    }
}

impl RareEventEstimator for SucEstimator {
    fn method_name(&self) -> &'static str {
        "SUC"
    }

    fn estimate(&self, limit_state: &(dyn LimitState + Sync), rng: &mut dyn RngCore) -> f64 {
        let dim = limit_state.dim();
        let base = StandardGaussian::new(dim);
        let n = self.n_per_level;
        let mut rng = rng_shim(rng);
        let mut net_rng = rand::rngs::StdRng::seed_from_u64(0x5ca1_ab1e);

        // Level 0.
        let mut xs: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut gs: Vec<f64> = Vec::with_capacity(n);
        for _ in 0..n {
            let x = base.sample(&mut rng);
            gs.push(limit_state.value(&x));
            xs.push(x);
        }
        // Archive of every labeled sample for classifier training.
        let mut all_xs = xs.clone();
        let mut all_gs = gs.clone();

        let mut log_prob = 0.0;
        for _level in 0..self.max_levels {
            let hits = gs.iter().filter(|&&g| g <= 0.0).count();
            if hits as f64 >= self.p0 * n as f64 {
                return (log_prob + (hits as f64 / n as f64).ln()).exp();
            }
            let b = quantile(&gs, self.p0);
            if b <= 0.0 {
                return if hits == 0 {
                    0.0
                } else {
                    (log_prob + (hits as f64 / n as f64).ln()).exp()
                };
            }
            log_prob += self.p0.ln();

            // Train the level classifier: is g(x) <= b?
            let flat: Vec<f64> = all_xs.iter().flatten().copied().collect();
            let xt = Tensor::from_vec(all_xs.len(), dim, flat);
            let labels: Vec<bool> = all_gs.iter().map(|&g| g <= b).collect();
            let clf = Classifier::fit(
                &xt,
                &labels,
                &[32],
                TrainConfig {
                    epochs: 30,
                    batch_size: 128,
                    lr: 5e-3,
                },
                &mut net_rng,
            );

            // Seeds inside the new region.
            let seeds: Vec<Vec<f64>> = xs
                .iter()
                .zip(&gs)
                .filter(|(_, &g)| g <= b)
                .map(|(x, _)| x.clone())
                .collect();
            if seeds.is_empty() {
                return 0.0;
            }

            // Generate the next population: perturb seeds, let the
            // classifier veto unpromising candidates for free, pay one
            // simulator call for accepted candidates.
            let mut new_xs = Vec::with_capacity(n);
            let mut new_gs = Vec::with_capacity(n);
            let mut cursor = 0usize;
            let max_attempts = 20 * n;
            let mut attempts = 0;
            while new_xs.len() < n && attempts < max_attempts {
                attempts += 1;
                let seed = &seeds[cursor % seeds.len()];
                cursor += 1;
                let cand: Vec<f64> = seed
                    .iter()
                    .map(|&v| {
                        let step: f64 = rng.sample(StandardNormal);
                        // Shrink toward the prior to keep candidates plausible.
                        let lam = self.spread;
                        v * (1.0 - lam * lam / 2.0) + lam * step
                    })
                    .collect();
                if clf.predict_proba_one(&cand) < 0.5 {
                    continue; // vetoed for free
                }
                let g = limit_state.value(&cand);
                all_xs.push(cand.clone());
                all_gs.push(g);
                if g <= b {
                    new_xs.push(cand);
                    new_gs.push(g);
                }
            }
            if new_xs.is_empty() {
                return 0.0;
            }
            // Pad by recycling seeds if the generator fell short.
            while new_xs.len() < n {
                let k = new_xs.len() % seeds.len();
                new_xs.push(seeds[k].clone());
                new_gs.push(b);
            }
            xs = new_xs;
            gs = new_gs;
        }

        let hits = gs.iter().filter(|&&g| g <= 0.0).count();
        if hits == 0 {
            0.0
        } else {
            (log_prob + (hits as f64 / gs.len() as f64).ln()).exp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nofis_prob::{log_error, normal_cdf, CountingOracle};
    use rand::rngs::StdRng;

    struct HalfSpace;
    impl LimitState for HalfSpace {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, x: &[f64]) -> f64 {
            3.0 - x[0]
        }
    }

    #[test]
    fn order_of_magnitude_on_tail() {
        let suc = SucEstimator::new(1_000, 0.1, 6);
        let golden = 1.0 - normal_cdf(3.0); // 1.35e-3
        let mut errs = Vec::new();
        for seed in 0..3 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = suc.estimate(&HalfSpace, &mut rng);
            errs.push(log_error(p, golden));
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        // SUC is biased; accept order-of-magnitude accuracy.
        assert!(mean < 2.5, "mean log error {mean}, errs {errs:?}");
    }

    #[test]
    fn counts_only_simulator_calls() {
        let oracle = CountingOracle::new(&HalfSpace);
        let suc = SucEstimator::new(300, 0.1, 4);
        let mut rng = StdRng::seed_from_u64(7);
        let _ = suc.estimate(&oracle, &mut rng);
        // Budget: initial level + accepted candidates only.
        assert!(oracle.calls() < 300 * 6, "calls = {}", oracle.calls());
    }
}
