//! DC operating-point analysis: direct MNA solve for linear circuits and
//! damped Newton–Raphson for circuits containing MOSFETs.

use crate::{Circuit, CircuitError, Element, Node};
use nofis_linalg::{lu::LuDecomposition, Matrix};

/// Maximum Newton iterations before declaring non-convergence.
const MAX_NEWTON_ITERS: usize = 200;
/// Voltage-update convergence tolerance.
const NEWTON_TOL: f64 = 1e-10;
/// Per-iteration clamp on node-voltage updates (crude but effective
/// damping for square-law devices).
const MAX_STEP: f64 = 0.5;

/// Result of a DC analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    node_voltages: Vec<f64>,
    vsrc_currents: Vec<f64>,
}

impl DcSolution {
    /// Voltage at `node` (0 for ground).
    pub fn voltage(&self, node: Node) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.node_voltages[node.0 - 1]
        }
    }

    /// Branch current through the `k`-th voltage source, in the order the
    /// sources were added (positive current flows into the `p` terminal
    /// through the source to `n`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn vsrc_current(&self, k: usize) -> f64 {
        self.vsrc_currents[k]
    }
}

impl Circuit {
    /// Solves the DC operating point.
    ///
    /// Capacitors are open circuits; MOSFETs are iterated with damped
    /// Newton–Raphson starting from all node voltages at zero.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::InvalidCircuit`] if the circuit has no nodes.
    /// * [`CircuitError::SingularSystem`] for floating nodes etc.
    /// * [`CircuitError::NoConvergence`] if Newton fails.
    pub fn dc_solve(&self) -> Result<DcSolution, CircuitError> {
        if self.node_count() == 0 {
            return Err(CircuitError::InvalidCircuit {
                context: "circuit has no nodes".into(),
            });
        }
        let dim = self.mna_dim();
        let has_mos = self
            .elements()
            .iter()
            .any(|e| matches!(e, Element::Mosfet { .. } | Element::Diode { .. }));
        let mut v = vec![0.0; dim];
        let iters = if has_mos { MAX_NEWTON_ITERS } else { 1 };

        for it in 0..iters {
            let (a, b) = self.assemble_dc(&v);
            let lu = LuDecomposition::new(&a)
                .map_err(|_| CircuitError::SingularSystem { analysis: "DC" })?;
            let v_new = lu
                .solve(&b)
                .map_err(|_| CircuitError::SingularSystem { analysis: "DC" })?;
            let mut delta: f64 = 0.0;
            for i in 0..dim {
                let step = (v_new[i] - v[i]).clamp(-MAX_STEP, MAX_STEP);
                delta = delta.max(step.abs());
                v[i] += step;
            }
            if (!has_mos || delta < NEWTON_TOL) && (has_mos || it == 0) {
                // Linear circuits converge in one solve; take it exactly.
                if !has_mos {
                    v = v_new;
                }
                return Ok(self.split_solution(v));
            }
        }
        let (a, b) = self.assemble_dc(&v);
        let residual = {
            let av = a.matvec(&v).expect("dimension consistent");
            av.iter()
                .zip(&b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max)
        };
        if residual < 1e-6 {
            return Ok(self.split_solution(v));
        }
        Err(CircuitError::NoConvergence {
            iterations: MAX_NEWTON_ITERS,
            residual,
        })
    }

    fn split_solution(&self, v: Vec<f64>) -> DcSolution {
        let n = self.node_count();
        DcSolution {
            node_voltages: v[..n].to_vec(),
            vsrc_currents: v[n..].to_vec(),
        }
    }

    /// Assembles the (linearized) DC MNA system at the current voltage
    /// estimate `v`.
    pub(crate) fn assemble_dc(&self, v: &[f64]) -> (Matrix, Vec<f64>) {
        let n = self.node_count();
        let dim = self.mna_dim();
        let mut a = Matrix::zeros(dim, dim);
        let mut b = vec![0.0; dim];
        let mut branch = n; // next voltage-source branch row

        // Helper closures operating on 1-based node ids (0 = ground).
        let idx = |node: Node| -> Option<usize> {
            if node.is_ground() {
                None
            } else {
                Some(node.0 - 1)
            }
        };
        let volt = |node: Node| -> f64 {
            match idx(node) {
                None => 0.0,
                Some(i) => v[i],
            }
        };

        let stamp_conductance = |a: &mut Matrix, n1: Node, n2: Node, g: f64| {
            if let Some(i) = idx(n1) {
                a[(i, i)] += g;
                if let Some(j) = idx(n2) {
                    a[(i, j)] -= g;
                    a[(j, i)] -= g;
                    a[(j, j)] += g;
                }
            } else if let Some(j) = idx(n2) {
                a[(j, j)] += g;
            }
        };

        for e in self.elements() {
            match *e {
                Element::Resistor { a: n1, b: n2, ohms } => {
                    stamp_conductance(&mut a, n1, n2, 1.0 / ohms);
                }
                Element::Capacitor { .. } => {} // open in DC
                Element::CurrentSource { from, to, amps } => {
                    if let Some(i) = idx(from) {
                        b[i] -= amps;
                    }
                    if let Some(i) = idx(to) {
                        b[i] += amps;
                    }
                }
                Element::VoltageSource { p, n: nn, volts } => {
                    let row = branch;
                    branch += 1;
                    if let Some(i) = idx(p) {
                        a[(i, row)] += 1.0;
                        a[(row, i)] += 1.0;
                    }
                    if let Some(i) = idx(nn) {
                        a[(i, row)] -= 1.0;
                        a[(row, i)] -= 1.0;
                    }
                    b[row] = volts;
                }
                Element::Vccs {
                    out_p,
                    out_n,
                    in_p,
                    in_n,
                    gm,
                } => {
                    // Current gm (v_inp - v_inn) from out_p to out_n.
                    for (node, sign) in [(out_p, 1.0), (out_n, -1.0)] {
                        if let Some(i) = idx(node) {
                            if let Some(j) = idx(in_p) {
                                a[(i, j)] += sign * gm;
                            }
                            if let Some(j) = idx(in_n) {
                                a[(i, j)] -= sign * gm;
                            }
                        }
                    }
                }
                Element::Diode {
                    anode,
                    cathode,
                    params,
                } => {
                    let vd = volt(anode) - volt(cathode);
                    let (id, gd) = params.evaluate(vd);
                    stamp_conductance(&mut a, anode, cathode, gd);
                    let i_eq = id - gd * vd;
                    if let Some(i) = idx(anode) {
                        b[i] -= i_eq;
                    }
                    if let Some(i) = idx(cathode) {
                        b[i] += i_eq;
                    }
                }
                Element::Mosfet { d, g, s, params } => {
                    // Companion model: linearize around current estimate.
                    let vgs = volt(g) - volt(s);
                    let vds = volt(d) - volt(s);
                    let op = params.evaluate(vgs, vds);
                    // gm from gate, gds from drain, plus residual current.
                    for (node, sign) in [(d, 1.0), (s, -1.0)] {
                        if let Some(i) = idx(node) {
                            if let Some(j) = idx(g) {
                                a[(i, j)] += sign * op.gm;
                            }
                            if let Some(j) = idx(s) {
                                a[(i, j)] -= sign * (op.gm + op.gds);
                            }
                            if let Some(j) = idx(d) {
                                a[(i, j)] += sign * op.gds;
                            }
                        }
                    }
                    let i_eq = op.id - op.gm * vgs - op.gds * vds;
                    if let Some(i) = idx(d) {
                        b[i] -= i_eq;
                    }
                    if let Some(i) = idx(s) {
                        b[i] += i_eq;
                    }
                }
            }
        }
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MosParams;

    #[test]
    fn voltage_divider() {
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let mid = ckt.node();
        ckt.voltage_source(vin, Node::GROUND, 3.0);
        ckt.resistor(vin, mid, 2_000.0);
        ckt.resistor(mid, Node::GROUND, 1_000.0);
        let dc = ckt.dc_solve().unwrap();
        assert!((dc.voltage(mid) - 1.0).abs() < 1e-12);
        assert!((dc.voltage(vin) - 3.0).abs() < 1e-12);
        // Source current: 3V over 3k = 1 mA flowing out of the source.
        assert!((dc.vsrc_current(0) + 1e-3).abs() < 1e-12);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Circuit::new();
        let a = ckt.node();
        ckt.current_source(Node::GROUND, a, 2e-3);
        ckt.resistor(a, Node::GROUND, 500.0);
        let dc = ckt.dc_solve().unwrap();
        assert!((dc.voltage(a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vccs_amplifier() {
        // v_out = -gm * R * v_in for a grounded VCCS load.
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let vout = ckt.node();
        ckt.voltage_source(vin, Node::GROUND, 0.1);
        ckt.vccs(vout, Node::GROUND, vin, Node::GROUND, 1e-3);
        ckt.resistor(vout, Node::GROUND, 10_000.0);
        let dc = ckt.dc_solve().unwrap();
        assert!((dc.voltage(vout) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn floating_node_is_singular() {
        let mut ckt = Circuit::new();
        let a = ckt.node();
        let _b = ckt.node(); // floating
        ckt.resistor(a, Node::GROUND, 100.0);
        assert!(matches!(
            ckt.dc_solve(),
            Err(CircuitError::SingularSystem { .. })
        ));
    }

    #[test]
    fn empty_circuit_is_invalid() {
        assert!(matches!(
            Circuit::new().dc_solve(),
            Err(CircuitError::InvalidCircuit { .. })
        ));
    }

    #[test]
    fn nmos_diode_connected_bias() {
        // Diode-connected NMOS pulled up by a resistor from 3V: solves the
        // quadratic ID = (3 - V)/R with ID = 0.5 β (V - Vth)².
        let mut ckt = Circuit::new();
        let vdd = ckt.node();
        let d = ckt.node();
        ckt.voltage_source(vdd, Node::GROUND, 3.0);
        ckt.resistor(vdd, d, 10_000.0);
        let params = MosParams::nmos(20e-6, 1e-6, 0.5, 100e-6, 0.0);
        ckt.mosfet(d, d, Node::GROUND, params);
        let dc = ckt.dc_solve().unwrap();
        let vd = dc.voltage(d);
        let beta = params.beta();
        let id = 0.5 * beta * (vd - 0.5).powi(2);
        let ir = (3.0 - vd) / 10_000.0;
        assert!((id - ir).abs() < 1e-9, "KCL violated: id={id}, ir={ir}");
        assert!(vd > 0.5 && vd < 3.0);
    }

    #[test]
    fn common_source_amplifier_bias() {
        // NMOS with gate at 1.0V, drain through 20k to 3V: saturation.
        let mut ckt = Circuit::new();
        let vdd = ckt.node();
        let gate = ckt.node();
        let drain = ckt.node();
        ckt.voltage_source(vdd, Node::GROUND, 3.0);
        ckt.voltage_source(gate, Node::GROUND, 1.0);
        ckt.resistor(vdd, drain, 20_000.0);
        let params = MosParams::nmos(10e-6, 1e-6, 0.5, 100e-6, 0.02);
        ckt.mosfet(drain, gate, Node::GROUND, params);
        let dc = ckt.dc_solve().unwrap();
        let vd = dc.voltage(drain);
        // Hand estimate: ID ≈ 0.5·1e-3·0.25 = 125 µA (before λ), drop 2.5V.
        assert!(vd > 0.2 && vd < 1.0, "vd = {vd}");
    }
}
