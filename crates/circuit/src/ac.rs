//! AC small-signal analysis and adjoint sensitivity.
//!
//! The complex MNA system `Y(ω) x = b` is assembled from the linear
//! elements (MOSFETs must be replaced by their small-signal equivalents —
//! the op-amp bench does this explicitly with VCCS/resistor stages). The
//! adjoint method then provides gradients of an output magnitude with
//! respect to *every* element value from one extra linear solve — this is
//! what makes NOFIS's differentiable training loss affordable on circuit
//! test cases: sensitivities ride along with each simulation instead of
//! costing `2D` extra solves.

use crate::{Circuit, CircuitError, Element, ElementId, Node};
use nofis_linalg::{lu::CluDecomposition, CMatrix, Complex64};

/// Result of an AC analysis at a single angular frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct AcSolution {
    node_voltages: Vec<Complex64>,
}

impl AcSolution {
    /// Complex node voltage phasor (0 for ground).
    pub fn voltage(&self, node: Node) -> Complex64 {
        if node.is_ground() {
            Complex64::ZERO
        } else {
            self.node_voltages[node.0 - 1]
        }
    }

    /// Magnitude of the node voltage.
    pub fn magnitude(&self, node: Node) -> f64 {
        self.voltage(node).abs()
    }

    /// Magnitude in decibels (`20 log10 |v|`).
    pub fn magnitude_db(&self, node: Node) -> f64 {
        20.0 * self.magnitude(node).log10()
    }
}

/// Sensitivity of an output magnitude with respect to element values.
#[derive(Debug, Clone, PartialEq)]
pub struct AcSensitivity {
    /// `|v_out|` at the analysis frequency.
    pub magnitude: f64,
    /// `d|v_out| / d(value_k)` for each requested element, in order. The
    /// differentiated value is the element's primary parameter: ohms for
    /// resistors, farads for capacitors, siemens for VCCS, amps/volts for
    /// sources.
    pub gradients: Vec<f64>,
}

impl Circuit {
    fn assemble_ac(&self, omega: f64) -> (CMatrix, Vec<Complex64>) {
        let n = self.node_count();
        let dim = self.mna_dim();
        let mut y = CMatrix::zeros(dim, dim);
        let mut b = vec![Complex64::ZERO; dim];
        let mut branch = n;

        let idx = |node: Node| -> Option<usize> {
            if node.is_ground() {
                None
            } else {
                Some(node.0 - 1)
            }
        };

        let stamp_admittance = |y: &mut CMatrix, n1: Node, n2: Node, g: Complex64| {
            if let Some(i) = idx(n1) {
                y[(i, i)] += g;
                if let Some(j) = idx(n2) {
                    y[(i, j)] -= g;
                    y[(j, i)] -= g;
                    y[(j, j)] += g;
                }
            } else if let Some(j) = idx(n2) {
                y[(j, j)] += g;
            }
        };

        for e in self.elements() {
            match *e {
                Element::Resistor { a, b: n2, ohms } => {
                    stamp_admittance(&mut y, a, n2, Complex64::from_real(1.0 / ohms));
                }
                Element::Capacitor { a, b: n2, farads } => {
                    stamp_admittance(&mut y, a, n2, Complex64::new(0.0, omega * farads));
                }
                Element::CurrentSource { from, to, amps } => {
                    if let Some(i) = idx(from) {
                        b[i] -= Complex64::from_real(amps);
                    }
                    if let Some(i) = idx(to) {
                        b[i] += Complex64::from_real(amps);
                    }
                }
                Element::VoltageSource { p, n: nn, volts } => {
                    let row = branch;
                    branch += 1;
                    if let Some(i) = idx(p) {
                        y[(i, row)] += Complex64::ONE;
                        y[(row, i)] += Complex64::ONE;
                    }
                    if let Some(i) = idx(nn) {
                        y[(i, row)] -= Complex64::ONE;
                        y[(row, i)] -= Complex64::ONE;
                    }
                    b[row] = Complex64::from_real(volts);
                }
                Element::Vccs {
                    out_p,
                    out_n,
                    in_p,
                    in_n,
                    gm,
                } => {
                    for (node, sign) in [(out_p, 1.0), (out_n, -1.0)] {
                        if let Some(i) = idx(node) {
                            if let Some(j) = idx(in_p) {
                                y[(i, j)] += Complex64::from_real(sign * gm);
                            }
                            if let Some(j) = idx(in_n) {
                                y[(i, j)] -= Complex64::from_real(sign * gm);
                            }
                        }
                    }
                }
                Element::Diode { .. } | Element::Mosfet { .. } => {
                    // AC analysis operates on small-signal circuits; callers
                    // replace devices with VCCS/resistor equivalents using
                    // the operating point from `dc_solve`. A raw MOSFET in
                    // an AC netlist contributes nothing.
                }
            }
        }
        (y, b)
    }

    /// Solves the small-signal system at angular frequency `omega` (rad/s).
    ///
    /// # Errors
    ///
    /// * [`CircuitError::InvalidCircuit`] if the circuit has no nodes.
    /// * [`CircuitError::SingularSystem`] for floating nodes etc.
    pub fn ac_solve(&self, omega: f64) -> Result<AcSolution, CircuitError> {
        if self.node_count() == 0 {
            return Err(CircuitError::InvalidCircuit {
                context: "circuit has no nodes".into(),
            });
        }
        let (y, b) = self.assemble_ac(omega);
        let lu = CluDecomposition::new(&y)
            .map_err(|_| CircuitError::SingularSystem { analysis: "AC" })?;
        let x = lu
            .solve(&b)
            .map_err(|_| CircuitError::SingularSystem { analysis: "AC" })?;
        Ok(AcSolution {
            node_voltages: x[..self.node_count()].to_vec(),
        })
    }

    /// Computes `|v_out(ω)|` and its gradient with respect to the values of
    /// the elements in `wrt`, using the adjoint method (one extra solve of
    /// the transposed system regardless of how many sensitivities are
    /// requested).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::ac_solve`]; additionally
    /// [`CircuitError::InvalidCircuit`] if `out` is ground or the output
    /// magnitude is zero (the gradient of `|·|` is undefined there).
    pub fn ac_sensitivity(
        &self,
        omega: f64,
        out: Node,
        wrt: &[ElementId],
    ) -> Result<AcSensitivity, CircuitError> {
        if out.is_ground() {
            return Err(CircuitError::InvalidCircuit {
                context: "output node must not be ground".into(),
            });
        }
        let dim = self.mna_dim();
        let (y, b) = self.assemble_ac(omega);
        let lu = CluDecomposition::new(&y)
            .map_err(|_| CircuitError::SingularSystem { analysis: "AC" })?;
        let x = lu
            .solve(&b)
            .map_err(|_| CircuitError::SingularSystem { analysis: "AC" })?;
        let v_out = x[out.0 - 1];
        let mag = v_out.abs();
        if mag == 0.0 {
            return Err(CircuitError::InvalidCircuit {
                context: "output magnitude is zero; |v| not differentiable".into(),
            });
        }

        // Adjoint system: Yᵀ λ = e_out  (plain transpose, no conjugation —
        // we differentiate the complex-analytic v_out and take the real
        // chain rule for |v_out| at the end).
        let mut yt = CMatrix::zeros(dim, dim);
        for i in 0..dim {
            for j in 0..dim {
                yt[(i, j)] = y[(j, i)];
            }
        }
        let mut e = vec![Complex64::ZERO; dim];
        e[out.0 - 1] = Complex64::ONE;
        let lam = CluDecomposition::new(&yt)
            .map_err(|_| CircuitError::SingularSystem {
                analysis: "adjoint",
            })?
            .solve(&e)
            .map_err(|_| CircuitError::SingularSystem {
                analysis: "adjoint",
            })?;

        // d v_out / dp = -λᵀ (dY/dp) x + λᵀ (db/dp); then
        // d|v|/dp = Re( conj(v_out) / |v_out| · dv_out/dp ).
        let idx = |node: Node| -> Option<usize> {
            if node.is_ground() {
                None
            } else {
                Some(node.0 - 1)
            }
        };
        let xv = |node: Node| -> Complex64 { idx(node).map_or(Complex64::ZERO, |i| x[i]) };
        let lv = |node: Node| -> Complex64 { idx(node).map_or(Complex64::ZERO, |i| lam[i]) };

        let mut gradients = Vec::with_capacity(wrt.len());
        let mut vsrc_index_of = vec![usize::MAX; self.elements().len()];
        {
            let mut k = 0;
            for (i, e) in self.elements().iter().enumerate() {
                if matches!(e, Element::VoltageSource { .. }) {
                    vsrc_index_of[i] = k;
                    k += 1;
                }
            }
        }

        for id in wrt {
            let dv_dp: Complex64 = match self.elements()[id.0] {
                Element::Diode { .. } => Complex64::ZERO,
                Element::Resistor { a, b: n2, ohms } => {
                    // p = ohms; dG/dR = -1/R². dY/dG stamps ±1.
                    let dg = -1.0 / (ohms * ohms);
                    let la = lv(a) - lv(n2);
                    let va = xv(a) - xv(n2);
                    -(la * va) * dg
                }
                Element::Capacitor { a, b: n2, .. } => {
                    let la = lv(a) - lv(n2);
                    let va = xv(a) - xv(n2);
                    -(la * va) * Complex64::new(0.0, omega)
                }
                Element::Vccs {
                    out_p,
                    out_n,
                    in_p,
                    in_n,
                    ..
                } => {
                    let lo = lv(out_p) - lv(out_n);
                    let vi = xv(in_p) - xv(in_n);
                    -(lo * vi)
                }
                Element::CurrentSource { from, to, .. } => {
                    // db/d(amps): -1 at `from`, +1 at `to`.
                    lv(to) - lv(from)
                }
                Element::VoltageSource { .. } => {
                    // db/d(volts): +1 at the branch row.
                    let k = vsrc_index_of[id.0];
                    lam[self.node_count() + k]
                }
                Element::Mosfet { .. } => Complex64::ZERO,
            };
            let grad = (v_out.conj() * dv_dp).re / mag;
            gradients.push(grad);
        }

        Ok(AcSensitivity {
            magnitude: mag,
            gradients,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RC low-pass filter driven by a 1 V source.
    fn rc_lowpass(r: f64, c: f64) -> (Circuit, Node, ElementId, ElementId) {
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let vout = ckt.node();
        ckt.voltage_source(vin, Node::GROUND, 1.0);
        let rid = ckt.resistor(vin, vout, r);
        let cid = ckt.capacitor(vout, Node::GROUND, c);
        (ckt, vout, rid, cid)
    }

    #[test]
    fn rc_transfer_function() {
        let (ckt, vout, _, _) = rc_lowpass(1_000.0, 1e-6);
        // |H| = 1/sqrt(1 + (ωRC)²); at ω = 1/RC it is 1/√2.
        let omega = 1.0 / (1_000.0 * 1e-6);
        let ac = ckt.ac_solve(omega).unwrap();
        assert!((ac.magnitude(vout) - 1.0 / 2.0_f64.sqrt()).abs() < 1e-12);
        assert!((ac.magnitude_db(vout) + 3.0103).abs() < 1e-3);
    }

    #[test]
    fn dc_limit_passes_through() {
        let (ckt, vout, _, _) = rc_lowpass(1_000.0, 1e-6);
        let ac = ckt.ac_solve(1e-3).unwrap();
        assert!((ac.magnitude(vout) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn adjoint_matches_finite_difference_for_rc() {
        let (ckt, vout, rid, cid) = rc_lowpass(1_000.0, 1e-6);
        let omega = 2_000.0;
        let sens = ckt.ac_sensitivity(omega, vout, &[rid, cid]).unwrap();

        let eps_r = 1e-3;
        let mut pr = rc_lowpass(1_000.0 + eps_r, 1e-6).0;
        let mut mr = rc_lowpass(1_000.0 - eps_r, 1e-6).0;
        let fd_r = (pr.ac_solve(omega).unwrap().magnitude(vout)
            - mr.ac_solve(omega).unwrap().magnitude(vout))
            / (2.0 * eps_r);
        let _ = (&mut pr, &mut mr);
        assert!(
            (sens.gradients[0] - fd_r).abs() / fd_r.abs() < 1e-5,
            "adjoint {} vs fd {}",
            sens.gradients[0],
            fd_r
        );

        let eps_c = 1e-12;
        let fd_c = (rc_lowpass(1_000.0, 1e-6 + eps_c)
            .0
            .ac_solve(omega)
            .unwrap()
            .magnitude(vout)
            - rc_lowpass(1_000.0, 1e-6 - eps_c)
                .0
                .ac_solve(omega)
                .unwrap()
                .magnitude(vout))
            / (2.0 * eps_c);
        assert!(
            (sens.gradients[1] - fd_c).abs() / fd_c.abs() < 1e-4,
            "adjoint {} vs fd {}",
            sens.gradients[1],
            fd_c
        );
    }

    #[test]
    fn adjoint_vccs_gain_sensitivity() {
        // v_out = -gm R v_in -> d|v_out|/dgm = R at v_in = 1.
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let vout = ckt.node();
        ckt.voltage_source(vin, Node::GROUND, 1.0);
        let gid = ckt.vccs(vout, Node::GROUND, vin, Node::GROUND, 2e-3);
        ckt.resistor(vout, Node::GROUND, 5_000.0);
        let sens = ckt.ac_sensitivity(1.0, vout, &[gid]).unwrap();
        assert!((sens.magnitude - 10.0).abs() < 1e-9);
        assert!((sens.gradients[0] - 5_000.0).abs() < 1e-6);
    }

    #[test]
    fn sensitivity_rejects_ground_output() {
        let (ckt, _, rid, _) = rc_lowpass(1_000.0, 1e-6);
        assert!(ckt.ac_sensitivity(1.0, Node::GROUND, &[rid]).is_err());
    }
}
