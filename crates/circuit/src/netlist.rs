use crate::{DiodeParams, MosParams};
use std::fmt;

/// A circuit node. `Node::GROUND` is the reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Node(pub(crate) usize);

impl Node {
    /// The ground/reference node.
    pub const GROUND: Node = Node(0);

    /// Returns `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// Handle to an element added to a [`Circuit`], used to address it in
/// sensitivity queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementId(pub(crate) usize);

/// A circuit element.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Resistance in ohms.
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b` (open in DC).
    Capacitor {
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Capacitance in farads.
        farads: f64,
    },
    /// Independent current source pushing `amps` from `from` into `to`.
    CurrentSource {
        /// Current leaves this node.
        from: Node,
        /// Current enters this node.
        to: Node,
        /// Source value in amperes (DC and AC magnitude).
        amps: f64,
    },
    /// Independent voltage source (`p` positive); adds one branch unknown.
    VoltageSource {
        /// Positive terminal.
        p: Node,
        /// Negative terminal.
        n: Node,
        /// Source value in volts (DC and AC magnitude).
        volts: f64,
    },
    /// Voltage-controlled current source: current `gm · (v_inp − v_inn)`
    /// flows from `out_p` to `out_n`.
    Vccs {
        /// Current leaves this node.
        out_p: Node,
        /// Current enters this node.
        out_n: Node,
        /// Positive controlling node.
        in_p: Node,
        /// Negative controlling node.
        in_n: Node,
        /// Transconductance in siemens.
        gm: f64,
    },
    /// Junction diode conducting from anode to cathode; solved by Newton
    /// iteration in DC, open in AC small-signal (add an explicit companion
    /// if junction conductance matters at the bias point).
    Diode {
        /// Anode terminal.
        anode: Node,
        /// Cathode terminal.
        cathode: Node,
        /// Shockley model parameters.
        params: DiodeParams,
    },
    /// Square-law MOSFET (drain, gate, source); solved by Newton iteration
    /// in DC and linearized for AC.
    Mosfet {
        /// Drain terminal.
        d: Node,
        /// Gate terminal.
        g: Node,
        /// Source terminal.
        s: Node,
        /// Device model parameters.
        params: MosParams,
    },
}

/// A flat netlist plus node bookkeeping — the input to the DC and AC
/// analyses.
///
/// # Example
///
/// ```
/// use nofis_circuit::{Circuit, Node};
///
/// # fn main() -> Result<(), nofis_circuit::CircuitError> {
/// // Voltage divider: 2V source over two 1k resistors.
/// let mut ckt = Circuit::new();
/// let vin = ckt.node();
/// let mid = ckt.node();
/// ckt.voltage_source(vin, Node::GROUND, 2.0);
/// ckt.resistor(vin, mid, 1_000.0);
/// ckt.resistor(mid, Node::GROUND, 1_000.0);
/// let dc = ckt.dc_solve()?;
/// assert!((dc.voltage(mid) - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    /// Number of non-ground nodes.
    n_nodes: usize,
    elements: Vec<Element>,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Circuit::default()
    }

    /// Allocates a new node.
    pub fn node(&mut self) -> Node {
        self.n_nodes += 1;
        Node(self.n_nodes)
    }

    /// Number of non-ground nodes.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Borrows the element list.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Mutably borrows an element by id (e.g. to sweep a value).
    pub fn element_mut(&mut self, id: ElementId) -> &mut Element {
        &mut self.elements[id.0]
    }

    fn push(&mut self, e: Element) -> ElementId {
        self.elements.push(e);
        ElementId(self.elements.len() - 1)
    }

    /// Crate-internal element insertion for modules defining their own
    /// device constructors (e.g. the diode).
    pub(crate) fn push_element(&mut self, e: Element) -> ElementId {
        self.push(e)
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not positive and finite.
    pub fn resistor(&mut self, a: Node, b: Node, ohms: f64) -> ElementId {
        assert!(
            ohms.is_finite() && ohms > 0.0,
            "resistance must be positive"
        );
        self.push(Element::Resistor { a, b, ohms })
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not positive and finite.
    pub fn capacitor(&mut self, a: Node, b: Node, farads: f64) -> ElementId {
        assert!(
            farads.is_finite() && farads > 0.0,
            "capacitance must be positive"
        );
        self.push(Element::Capacitor { a, b, farads })
    }

    /// Adds an independent current source (`amps` flows `from → to`).
    pub fn current_source(&mut self, from: Node, to: Node, amps: f64) -> ElementId {
        self.push(Element::CurrentSource { from, to, amps })
    }

    /// Adds an independent voltage source.
    pub fn voltage_source(&mut self, p: Node, n: Node, volts: f64) -> ElementId {
        self.push(Element::VoltageSource { p, n, volts })
    }

    /// Adds a voltage-controlled current source.
    pub fn vccs(&mut self, out_p: Node, out_n: Node, in_p: Node, in_n: Node, gm: f64) -> ElementId {
        self.push(Element::Vccs {
            out_p,
            out_n,
            in_p,
            in_n,
            gm,
        })
    }

    /// Adds a square-law MOSFET.
    pub fn mosfet(&mut self, d: Node, g: Node, s: Node, params: MosParams) -> ElementId {
        self.push(Element::Mosfet { d, g, s, params })
    }

    /// Number of voltage sources (each adds one MNA branch unknown).
    pub(crate) fn vsrc_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::VoltageSource { .. }))
            .count()
    }

    /// Size of the MNA system: nodes plus voltage-source branches.
    pub(crate) fn mna_dim(&self) -> usize {
        self.n_nodes + self.vsrc_count()
    }
}

/// Errors from circuit analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// The MNA matrix was singular (floating node, source loop…).
    SingularSystem {
        /// Description of the analysis that failed.
        analysis: &'static str,
    },
    /// Newton–Raphson failed to converge in the allotted iterations.
    NoConvergence {
        /// Iterations attempted.
        iterations: usize,
        /// Final voltage-update norm.
        residual: f64,
    },
    /// The circuit is empty or otherwise unanalyzable.
    InvalidCircuit {
        /// Human-readable description.
        context: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::SingularSystem { analysis } => {
                write!(f, "singular MNA system during {analysis} analysis")
            }
            CircuitError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "Newton iteration did not converge after {iterations} steps (residual {residual:.3e})"
            ),
            CircuitError::InvalidCircuit { context } => {
                write!(f, "invalid circuit: {context}")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_allocation() {
        let mut ckt = Circuit::new();
        assert!(Node::GROUND.is_ground());
        let a = ckt.node();
        let b = ckt.node();
        assert_ne!(a, b);
        assert!(!a.is_ground());
        assert_eq!(ckt.node_count(), 2);
    }

    #[test]
    fn mna_dim_counts_vsrc_branches() {
        let mut ckt = Circuit::new();
        let a = ckt.node();
        let b = ckt.node();
        ckt.voltage_source(a, Node::GROUND, 1.0);
        ckt.resistor(a, b, 10.0);
        ckt.voltage_source(b, Node::GROUND, 2.0);
        assert_eq!(ckt.mna_dim(), 4);
        assert_eq!(ckt.vsrc_count(), 2);
    }

    #[test]
    fn element_mut_allows_sweeps() {
        let mut ckt = Circuit::new();
        let a = ckt.node();
        let id = ckt.resistor(a, Node::GROUND, 100.0);
        if let Element::Resistor { ohms, .. } = ckt.element_mut(id) {
            *ohms = 200.0;
        }
        assert!(matches!(
            ckt.elements()[0],
            Element::Resistor { ohms, .. } if ohms == 200.0
        ));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_negative_resistance() {
        let mut ckt = Circuit::new();
        let a = ckt.node();
        ckt.resistor(a, Node::GROUND, -5.0);
    }
}
