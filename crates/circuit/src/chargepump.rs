//! Behavioral charge-pump bench for the Charge Pump test case (#8).
//!
//! The paper's charge pump (from Gao et al., ICCAD'19) is simulated at
//! transistor level; its spec is the UP/DOWN current mismatch at the
//! output. We model the two current paths behaviorally: each consists of a
//! cascade of two square-law current mirrors, and 16 standard-Gaussian
//! variables perturb the width and threshold voltage of all 8 mirror
//! transistors. The mismatch `|I_up − I_down|` inherits the quadratic
//! device behaviour and the two-sided, multi-region failure set of the real
//! circuit.

/// One square-law current mirror with per-device width/threshold
/// perturbations.
///
/// The diode device sets `V_gs` from the input current; the output device
/// copies it. Perturbations enter as `β → β·(1 + σ_w·xw)` and
/// `V_th → V_th + σ_vt·xv`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Mirror {
    /// Nominal gain factor `β = k' W/L` of both devices (A/V²).
    beta: f64,
    /// Nominal threshold voltage (V).
    vth: f64,
}

impl Mirror {
    /// Output current and its partial derivatives
    /// `(i_out, d/d_iin, d/dxw1, d/dxv1, d/dxw2, d/dxv2)`.
    #[allow(clippy::too_many_arguments)]
    fn evaluate(
        &self,
        i_in: f64,
        sw: f64,
        svt: f64,
        xw1: f64,
        xv1: f64,
        xw2: f64,
        xv2: f64,
    ) -> (f64, [f64; 5]) {
        let b1 = self.beta * (1.0 + sw * xw1).max(0.05);
        let b2 = self.beta * (1.0 + sw * xw2).max(0.05);
        let vt1 = self.vth + svt * xv1;
        let vt2 = self.vth + svt * xv2;
        // Diode device: Vov1 = sqrt(2 I / β1).
        let vov1 = (2.0 * i_in / b1).sqrt();
        // Output overdrive: Vgs - Vt2 = Vt1 + Vov1 - Vt2.
        let vov2 = (vt1 + vov1 - vt2).max(0.0);
        let i_out = 0.5 * b2 * vov2 * vov2;

        // Partials.
        let db1 = if 1.0 + sw * xw1 > 0.05 {
            self.beta * sw
        } else {
            0.0
        };
        let db2 = if 1.0 + sw * xw2 > 0.05 {
            self.beta * sw
        } else {
            0.0
        };
        let dvov1_diin = if i_in > 0.0 { 1.0 / (b1 * vov1) } else { 0.0 };
        let dvov1_db1 = -0.5 * vov1 / b1;
        let active = vov2 > 0.0;
        let chain = if active { b2 * vov2 } else { 0.0 };

        let d_iin = chain * dvov1_diin;
        let d_xw1 = chain * dvov1_db1 * db1;
        let d_xv1 = chain * svt;
        let d_xw2 = 0.5 * vov2 * vov2 * db2;
        let d_xv2 = -chain * svt;
        (i_out, [d_iin, d_xw1, d_xv1, d_xw2, d_xv2])
    }
}

/// The charge-pump current-mismatch bench.
///
/// # Example
///
/// ```
/// use nofis_circuit::ChargePumpBench;
///
/// let bench = ChargePumpBench::new();
/// let (mismatch, grad) = bench.mismatch_grad(&[0.0; 16]);
/// assert!(mismatch.abs() < 1e-9); // perfectly matched at nominal
/// assert_eq!(grad.len(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargePumpBench {
    /// Reference current fed to both paths (A).
    pub i_ref: f64,
    /// Mirror stage model (identical nominal stages).
    up1: Mirror,
    up2: Mirror,
    dn1: Mirror,
    dn2: Mirror,
    /// Relative width sigma per unit `x`.
    pub sigma_w: f64,
    /// Absolute threshold sigma per unit `x` (V).
    pub sigma_vt: f64,
}

impl Default for ChargePumpBench {
    fn default() -> Self {
        Self::new()
    }
}

impl ChargePumpBench {
    /// Number of variation dimensions (8 transistors × {width, Vth}).
    pub const DIM: usize = 16;

    /// Creates the bench with nominal 100 µA reference and mirror devices
    /// sized for ≈ 0.32 V overdrive.
    pub fn new() -> Self {
        let pmos = Mirror {
            beta: 2e-3,
            vth: 0.45,
        };
        let nmos = Mirror {
            beta: 2.5e-3,
            vth: 0.4,
        };
        ChargePumpBench {
            i_ref: 100e-6,
            up1: pmos,
            up2: pmos,
            dn1: nmos,
            dn2: nmos,
            sigma_w: 0.0755,
            sigma_vt: 0.0316,
        }
    }

    /// Signed mismatch `I_up − I_down` (A) and its gradient with respect to
    /// the 16 variation coordinates.
    ///
    /// Coordinate layout: `x[0..8]` drive the UP path (two mirrors × two
    /// devices × {width, Vth}), `x[8..16]` the DOWN path.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 16`.
    pub fn mismatch_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        assert_eq!(x.len(), Self::DIM, "charge pump expects 16 variation dims");
        let (sw, svt) = (self.sigma_w, self.sigma_vt);
        let mut grad = vec![0.0; Self::DIM];

        // UP path: mirror1 (x0..x3) feeding mirror2 (x4..x7).
        let (i_m1, d1) = self
            .up1
            .evaluate(self.i_ref, sw, svt, x[0], x[1], x[2], x[3]);
        let (i_up, d2) = self.up2.evaluate(i_m1, sw, svt, x[4], x[5], x[6], x[7]);
        // d i_up / d x0..3 = d2.d_iin * d1.d_x*
        for (k, g) in d1[1..].iter().enumerate() {
            grad[k] += d2[0] * g;
        }
        for (k, g) in d2[1..].iter().enumerate() {
            grad[4 + k] += g;
        }

        // DOWN path: mirror1 (x8..x11) feeding mirror2 (x12..x15).
        let (i_m1d, e1) = self
            .dn1
            .evaluate(self.i_ref, sw, svt, x[8], x[9], x[10], x[11]);
        let (i_dn, e2) = self
            .dn2
            .evaluate(i_m1d, sw, svt, x[12], x[13], x[14], x[15]);
        for (k, g) in e1[1..].iter().enumerate() {
            grad[8 + k] -= e2[0] * g;
        }
        for (k, g) in e2[1..].iter().enumerate() {
            grad[12 + k] -= g;
        }

        (i_up - i_dn, grad)
    }

    /// Absolute mismatch `|I_up − I_down|` (A) with gradient (subgradient
    /// at exactly zero mismatch).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 16`.
    pub fn abs_mismatch_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let (delta, mut grad) = self.mismatch_grad(x);
        let s = if delta >= 0.0 { 1.0 } else { -1.0 };
        for g in &mut grad {
            *g *= s;
        }
        (delta.abs(), grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_paths_match() {
        let bench = ChargePumpBench::new();
        let (delta, _) = bench.mismatch_grad(&[0.0; 16]);
        assert!(delta.abs() < 1e-12);
    }

    #[test]
    fn wider_up_device_raises_up_current() {
        let bench = ChargePumpBench::new();
        let mut x = [0.0; 16];
        x[6] = 1.0; // UP mirror-2 output device width
        let (delta, _) = bench.mismatch_grad(&x);
        assert!(delta > 0.0);
        x[6] = 0.0;
        x[14] = 1.0; // DOWN mirror-2 output device width
        let (delta, _) = bench.mismatch_grad(&x);
        assert!(delta < 0.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let bench = ChargePumpBench::new();
        let mut x = [0.0; 16];
        for (i, v) in x.iter_mut().enumerate() {
            *v = 0.3 * ((i as f64 * 0.77).sin()); // deterministic non-trivial point
        }
        let (_, grad) = bench.mismatch_grad(&x);
        let eps = 1e-7;
        for i in 0..16 {
            let mut xp = x;
            xp[i] += eps;
            let (fp, _) = bench.mismatch_grad(&xp);
            xp[i] -= 2.0 * eps;
            let (fm, _) = bench.mismatch_grad(&xp);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (grad[i] - fd).abs() < 1e-6 * fd.abs().max(1e-6),
                "dim {i}: analytic {} vs fd {fd}",
                grad[i]
            );
        }
    }

    #[test]
    fn abs_mismatch_flips_gradient_sign() {
        let bench = ChargePumpBench::new();
        let mut x = [0.0; 16];
        x[14] = 1.0; // down path stronger: delta < 0
        let (signed, sg) = bench.mismatch_grad(&x);
        let (abs_v, ag) = bench.abs_mismatch_grad(&x);
        assert!(signed < 0.0);
        assert_eq!(abs_v, -signed);
        assert_eq!(ag[14], -sg[14]);
    }

    #[test]
    fn mismatch_scale_is_in_the_tens_of_microamps() {
        // One-sigma perturbations should move tens of µA so that the
        // 370 µA spec sits a few sigma out.
        let bench = ChargePumpBench::new();
        let mut acc = 0.0;
        for i in 0..16 {
            let mut x = [0.0; 16];
            x[i] = 1.0;
            let (delta, _) = bench.mismatch_grad(&x);
            acc += delta * delta;
        }
        let sigma = acc.sqrt();
        assert!(sigma > 20e-6 && sigma < 200e-6, "sigma = {sigma:.3e}");
    }
}
