//! Square-law MOSFET model with channel-length modulation.
//!
//! Level-1 (Shichman–Hodges) equations are accurate enough for the yield
//! benchmarks here: the variation-space maps (width/threshold perturbation
//! → drain current and small-signal parameters) are smooth and analytic,
//! which is what the differentiable NOFIS loss needs.

/// Device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosType {
    /// N-channel device.
    Nmos,
    /// P-channel device (all voltages internally reflected).
    Pmos,
}

/// Operating region of a square-law MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// `V_gs <= V_th`: no channel.
    Cutoff,
    /// `V_ds < V_gs - V_th`: resistive channel.
    Triode,
    /// `V_ds >= V_gs - V_th`: current source behaviour.
    Saturation,
}

/// Square-law MOSFET parameters.
///
/// # Example
///
/// ```
/// use nofis_circuit::{MosParams, MosType};
///
/// let m = MosParams::nmos(200e-6, 1e-6, 0.5, 50e-6, 0.05);
/// let op = m.evaluate(1.0, 1.2);
/// assert!(op.id > 0.0);
/// assert!(op.gm > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosParams {
    /// Polarity.
    pub mos_type: MosType,
    /// Channel width in meters.
    pub width: f64,
    /// Channel length in meters.
    pub length: f64,
    /// Threshold voltage magnitude in volts.
    pub vth: f64,
    /// Process transconductance `k' = µ C_ox` in A/V².
    pub kp: f64,
    /// Channel-length modulation coefficient `λ` in 1/V.
    pub lambda: f64,
}

/// Evaluated large- and small-signal quantities at a bias point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosOperatingPoint {
    /// Drain current (positive into the drain for NMOS).
    pub id: f64,
    /// Transconductance `∂I_d/∂V_gs`.
    pub gm: f64,
    /// Output conductance `∂I_d/∂V_ds`.
    pub gds: f64,
    /// Operating region.
    pub region: Region,
}

impl MosParams {
    /// Convenience constructor for an NMOS device.
    pub fn nmos(width: f64, length: f64, vth: f64, kp: f64, lambda: f64) -> Self {
        MosParams {
            mos_type: MosType::Nmos,
            width,
            length,
            vth,
            kp,
            lambda,
        }
    }

    /// Convenience constructor for a PMOS device (pass `vth` as a positive
    /// magnitude).
    pub fn pmos(width: f64, length: f64, vth: f64, kp: f64, lambda: f64) -> Self {
        MosParams {
            mos_type: MosType::Pmos,
            width,
            length,
            vth,
            kp,
            lambda,
        }
    }

    /// The device gain factor `β = k' W / L`.
    pub fn beta(&self) -> f64 {
        self.kp * self.width / self.length
    }

    /// Evaluates drain current and small-signal parameters at the bias
    /// `(v_gs, v_ds)`. For PMOS pass source-referred NMOS-style voltages
    /// (`v_sg`, `v_sd`); polarity only matters for callers assembling
    /// circuits.
    pub fn evaluate(&self, v_gs: f64, v_ds: f64) -> MosOperatingPoint {
        let vov = v_gs - self.vth;
        let beta = self.beta();
        if vov <= 0.0 {
            return MosOperatingPoint {
                id: 0.0,
                gm: 0.0,
                gds: 0.0,
                region: Region::Cutoff,
            };
        }
        if v_ds < vov {
            // Triode region.
            let id = beta * (vov * v_ds - 0.5 * v_ds * v_ds) * (1.0 + self.lambda * v_ds);
            let gm = beta * v_ds * (1.0 + self.lambda * v_ds);
            let gds = beta * (vov - v_ds) * (1.0 + self.lambda * v_ds)
                + beta * (vov * v_ds - 0.5 * v_ds * v_ds) * self.lambda;
            MosOperatingPoint {
                id,
                gm,
                gds,
                region: Region::Triode,
            }
        } else {
            // Saturation region.
            let id0 = 0.5 * beta * vov * vov;
            let id = id0 * (1.0 + self.lambda * v_ds);
            let gm = beta * vov * (1.0 + self.lambda * v_ds);
            let gds = id0 * self.lambda;
            MosOperatingPoint {
                id,
                gm,
                gds,
                region: Region::Saturation,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> MosParams {
        MosParams::nmos(100e-6, 1e-6, 0.5, 50e-6, 0.04)
    }

    #[test]
    fn cutoff_below_threshold() {
        let op = device().evaluate(0.3, 1.0);
        assert_eq!(op.region, Region::Cutoff);
        assert_eq!(op.id, 0.0);
        assert_eq!(op.gm, 0.0);
    }

    #[test]
    fn saturation_current_is_square_law() {
        let m = device();
        let op = m.evaluate(1.0, 2.0);
        assert_eq!(op.region, Region::Saturation);
        let expected = 0.5 * m.beta() * 0.25 * (1.0 + 0.04 * 2.0);
        assert!((op.id - expected).abs() < 1e-15);
    }

    #[test]
    fn region_boundary_is_continuous() {
        let m = device();
        let vov = 0.5;
        let below = m.evaluate(1.0, vov - 1e-9);
        let above = m.evaluate(1.0, vov + 1e-9);
        assert!((below.id - above.id).abs() < 1e-9 * m.beta());
    }

    #[test]
    fn gm_gds_match_finite_differences() {
        let m = device();
        let (vgs, vds) = (1.1, 0.3); // triode
        let eps = 1e-7;
        let op = m.evaluate(vgs, vds);
        let gm_fd = (m.evaluate(vgs + eps, vds).id - m.evaluate(vgs - eps, vds).id) / (2.0 * eps);
        let gds_fd = (m.evaluate(vgs, vds + eps).id - m.evaluate(vgs, vds - eps).id) / (2.0 * eps);
        assert!((op.gm - gm_fd).abs() / gm_fd.abs() < 1e-6);
        assert!((op.gds - gds_fd).abs() / gds_fd.abs() < 1e-6);

        let (vgs, vds) = (1.1, 1.5); // saturation
        let op = m.evaluate(vgs, vds);
        let gm_fd = (m.evaluate(vgs + eps, vds).id - m.evaluate(vgs - eps, vds).id) / (2.0 * eps);
        let gds_fd = (m.evaluate(vgs, vds + eps).id - m.evaluate(vgs, vds - eps).id) / (2.0 * eps);
        assert!((op.gm - gm_fd).abs() / gm_fd.abs() < 1e-6);
        assert!((op.gds - gds_fd).abs() / gds_fd.abs() < 1e-5);
    }

    #[test]
    fn wider_device_conducts_more() {
        let narrow = MosParams::nmos(50e-6, 1e-6, 0.5, 50e-6, 0.04);
        let wide = MosParams::nmos(150e-6, 1e-6, 0.5, 50e-6, 0.04);
        assert!(wide.evaluate(1.0, 1.0).id > narrow.evaluate(1.0, 1.0).id);
    }
}
