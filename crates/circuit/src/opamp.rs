//! Two-stage Miller-compensated OTA bench for the Opamp test case (#6).
//!
//! The paper's op-amp (Yan et al., ISSCC'12) is a transistor-level
//! three-stage amplifier simulated in SPICE; here we model a two-stage CMOS
//! OTA in our own MNA simulator. Five standard-Gaussian process variables
//! perturb device widths and channel-length-modulation coefficients; the
//! derived small-signal elements (gm via the square law, output
//! conductances) form the AC netlist, and the spec is the low-frequency
//! gain in dB. Gradients come from the adjoint AC sensitivity chained
//! through the analytic device maps — one simulation yields both `g(x)` and
//! `∇g(x)`.

use crate::{Circuit, CircuitError, Node};

/// Fraction by which one standard deviation of each process variable moves
/// its device parameter.
const SIGMA: f64 = 0.1;

/// Nominal design constants of the OTA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpampDesign {
    /// First-stage bias current per side (A).
    pub i1: f64,
    /// Second-stage bias current (A).
    pub i2: f64,
    /// NMOS process transconductance `k'_n` (A/V²).
    pub kp_n: f64,
    /// PMOS process transconductance `k'_p` (A/V²).
    pub kp_p: f64,
    /// NMOS channel-length modulation (1/V).
    pub lambda_n: f64,
    /// PMOS channel-length modulation (1/V).
    pub lambda_p: f64,
    /// Input-pair W/L ratio.
    pub wl1: f64,
    /// Second-stage W/L ratio.
    pub wl6: f64,
    /// Miller compensation capacitor (F).
    pub cc: f64,
    /// Load capacitor (F).
    pub cl: f64,
    /// Analysis angular frequency (rad/s); low enough to read the DC gain.
    pub omega: f64,
}

impl Default for OpampDesign {
    fn default() -> Self {
        OpampDesign {
            i1: 20e-6,
            i2: 100e-6,
            kp_n: 100e-6,
            kp_p: 40e-6,
            lambda_n: 0.05,
            lambda_p: 0.1,
            wl1: 40.0,
            wl6: 100.0,
            cc: 2e-12,
            cl: 5e-12,
            omega: 10.0,
        }
    }
}

/// The op-amp yield bench: maps a 5-dimensional variation vector to the
/// small-signal gain (dB) with analytic+adjoint gradients.
///
/// Variation mapping (all multiplicative `1 + SIGMA·xᵢ` perturbations):
///
/// | coord | device parameter |
/// |---|---|
/// | `x[0]` | input-pair width (moves `gm1 ∝ √W`) |
/// | `x[1]` | first-stage output conductances `gds2 + gds4` |
/// | `x[2]` | second-stage width (moves `gm6 ∝ √W`) |
/// | `x[3]` | second-stage NMOS output conductance `gds6` |
/// | `x[4]` | second-stage PMOS output conductance `gds7` |
///
/// # Example
///
/// ```
/// use nofis_circuit::OpampBench;
///
/// # fn main() -> Result<(), nofis_circuit::CircuitError> {
/// let bench = OpampBench::new();
/// let (gain_db, grad) = bench.gain_db_grad(&[0.0; 5])?;
/// assert!(gain_db > 70.0 && gain_db < 85.0);
/// assert_eq!(grad.len(), 5);
/// assert!(grad[0] > 0.0); // wider input pair -> more gain
/// assert!(grad[1] < 0.0); // more output conductance -> less gain
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpampBench {
    design: OpampDesign,
}

impl Default for OpampBench {
    fn default() -> Self {
        Self::new()
    }
}

impl OpampBench {
    /// Creates the bench with the default design.
    pub fn new() -> Self {
        OpampBench {
            design: OpampDesign::default(),
        }
    }

    /// Creates the bench with an explicit design.
    pub fn with_design(design: OpampDesign) -> Self {
        OpampBench { design }
    }

    /// Borrows the design constants.
    pub fn design(&self) -> &OpampDesign {
        &self.design
    }

    /// Number of variation dimensions.
    pub const DIM: usize = 5;

    /// Derived small-signal element values and their derivatives with
    /// respect to each variation coordinate.
    ///
    /// Returns `(values, dvalues/dx)` for
    /// `[gm1, r1, gm6, r2]` where `r1 = 1/(gds2+gds4)`, `r2 = 1/(gds6+gds7)`.
    fn small_signal(&self, x: &[f64]) -> ([f64; 4], [[f64; 5]; 4]) {
        let d = &self.design;
        // gm = sqrt(2 k' (W/L) I); width scales linearly with (1 + σ x).
        let w1 = (1.0 + SIGMA * x[0]).max(0.05);
        let gm1 = (2.0 * d.kp_n * d.wl1 * w1 * d.i1).sqrt();
        let dgm1_dx0 = if 1.0 + SIGMA * x[0] > 0.05 {
            0.5 * gm1 / w1 * SIGMA
        } else {
            0.0
        };

        let g1_nom = (d.lambda_n + d.lambda_p) * d.i1;
        let s1 = (1.0 + SIGMA * x[1]).max(0.05);
        let g1 = g1_nom * s1;
        let r1 = 1.0 / g1;
        let dr1_dx1 = if 1.0 + SIGMA * x[1] > 0.05 {
            -r1 / s1 * SIGMA
        } else {
            0.0
        };

        let w6 = (1.0 + SIGMA * x[2]).max(0.05);
        let gm6 = (2.0 * d.kp_p * d.wl6 * w6 * d.i2).sqrt();
        let dgm6_dx2 = if 1.0 + SIGMA * x[2] > 0.05 {
            0.5 * gm6 / w6 * SIGMA
        } else {
            0.0
        };

        let g6_nom = d.lambda_p * d.i2;
        let g7_nom = d.lambda_n * d.i2;
        let s6 = (1.0 + SIGMA * x[3]).max(0.05);
        let s7 = (1.0 + SIGMA * x[4]).max(0.05);
        let g2 = g6_nom * s6 + g7_nom * s7;
        let r2 = 1.0 / g2;
        let dr2_dx3 = if 1.0 + SIGMA * x[3] > 0.05 {
            -r2 * r2 * g6_nom * SIGMA
        } else {
            0.0
        };
        let dr2_dx4 = if 1.0 + SIGMA * x[4] > 0.05 {
            -r2 * r2 * g7_nom * SIGMA
        } else {
            0.0
        };

        let values = [gm1, r1, gm6, r2];
        let mut jac = [[0.0; 5]; 4];
        jac[0][0] = dgm1_dx0;
        jac[1][1] = dr1_dx1;
        jac[2][2] = dgm6_dx2;
        jac[3][3] = dr2_dx3;
        jac[3][4] = dr2_dx4;
        (values, jac)
    }

    /// Simulates the OTA at the variation point `x` and returns
    /// `(gain_dB, d gain_dB / dx)`.
    ///
    /// One MNA solve plus one adjoint solve; gradients are exact to solver
    /// precision.
    ///
    /// # Errors
    ///
    /// Propagates [`CircuitError`] from the AC analysis.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 5`.
    pub fn gain_db_grad(&self, x: &[f64]) -> Result<(f64, Vec<f64>), CircuitError> {
        assert_eq!(x.len(), Self::DIM, "opamp bench expects 5 variation dims");
        let d = &self.design;
        let ([gm1, r1, gm6, r2], jac) = self.small_signal(x);

        // Small-signal netlist: vin --(gm1)--> n1 (r1, Cc to out)
        //                        n1 --(gm6)--> out (r2, CL).
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let n1 = ckt.node();
        let out = ckt.node();
        ckt.voltage_source(vin, Node::GROUND, 1.0);
        // Inverting first stage: current gm1·v_in pulled out of n1.
        let e_gm1 = ckt.vccs(n1, Node::GROUND, vin, Node::GROUND, gm1);
        let e_r1 = ckt.resistor(n1, Node::GROUND, r1);
        ckt.capacitor(n1, out, d.cc);
        let e_gm6 = ckt.vccs(out, Node::GROUND, n1, Node::GROUND, gm6);
        let e_r2 = ckt.resistor(out, Node::GROUND, r2);
        ckt.capacitor(out, Node::GROUND, d.cl);

        let sens = ckt.ac_sensitivity(d.omega, out, &[e_gm1, e_r1, e_gm6, e_r2])?;
        let gain_db = 20.0 * sens.magnitude.log10();
        // d(dB)/d|v| = 20 / (ln 10 · |v|)
        let db_chain = 20.0 / (std::f64::consts::LN_10 * sens.magnitude);

        let mut grad = vec![0.0; Self::DIM];
        for (k, dmag_dval) in sens.gradients.iter().enumerate() {
            for (i, g) in grad.iter_mut().enumerate() {
                *g += db_chain * dmag_dval * jac[k][i];
            }
        }
        Ok((gain_db, grad))
    }

    /// Gain only (no gradient); one MNA solve.
    ///
    /// # Errors
    ///
    /// Propagates [`CircuitError`] from the AC analysis.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 5`.
    pub fn gain_db(&self, x: &[f64]) -> Result<f64, CircuitError> {
        assert_eq!(x.len(), Self::DIM, "opamp bench expects 5 variation dims");
        let d = &self.design;
        let ([gm1, r1, gm6, r2], _) = self.small_signal(x);
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let n1 = ckt.node();
        let out = ckt.node();
        ckt.voltage_source(vin, Node::GROUND, 1.0);
        ckt.vccs(n1, Node::GROUND, vin, Node::GROUND, gm1);
        ckt.resistor(n1, Node::GROUND, r1);
        ckt.capacitor(n1, out, d.cc);
        ckt.vccs(out, Node::GROUND, n1, Node::GROUND, gm6);
        ckt.resistor(out, Node::GROUND, r2);
        ckt.capacitor(out, Node::GROUND, d.cl);
        Ok(ckt.ac_solve(d.omega)?.magnitude_db(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_gain_matches_hand_analysis() {
        let bench = OpampBench::new();
        let gain = bench.gain_db(&[0.0; 5]).unwrap();
        // gm1·r1·gm6·r2 with the default design is ≈ 78 dB.
        assert!((gain - 78.0).abs() < 1.0, "gain = {gain}");
    }

    #[test]
    fn gain_monotone_in_each_knob() {
        let bench = OpampBench::new();
        let base = bench.gain_db(&[0.0; 5]).unwrap();
        assert!(bench.gain_db(&[1.0, 0.0, 0.0, 0.0, 0.0]).unwrap() > base);
        assert!(bench.gain_db(&[0.0, 1.0, 0.0, 0.0, 0.0]).unwrap() < base);
        assert!(bench.gain_db(&[0.0, 0.0, 1.0, 0.0, 0.0]).unwrap() > base);
        assert!(bench.gain_db(&[0.0, 0.0, 0.0, 1.0, 0.0]).unwrap() < base);
        assert!(bench.gain_db(&[0.0, 0.0, 0.0, 0.0, 1.0]).unwrap() < base);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let bench = OpampBench::new();
        let x = [0.3, -0.7, 0.2, 1.1, -0.4];
        let (v, grad) = bench.gain_db_grad(&x).unwrap();
        assert!((v - bench.gain_db(&x).unwrap()).abs() < 1e-12);
        let eps = 1e-6;
        for i in 0..5 {
            let mut xp = x;
            xp[i] += eps;
            let fp = bench.gain_db(&xp).unwrap();
            xp[i] -= 2.0 * eps;
            let fm = bench.gain_db(&xp).unwrap();
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (grad[i] - fd).abs() < 1e-5 * fd.abs().max(1.0),
                "dim {i}: adjoint {} vs fd {fd}",
                grad[i]
            );
        }
    }

    #[test]
    fn extreme_variation_stays_finite() {
        let bench = OpampBench::new();
        let (v, grad) = bench
            .gain_db_grad(&[-12.0, 12.0, -12.0, 12.0, 12.0])
            .unwrap();
        assert!(v.is_finite());
        assert!(grad.iter().all(|g| g.is_finite()));
    }
}
