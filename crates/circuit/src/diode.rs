//! Exponential junction diode with Newton companion model.

use crate::{Circuit, Element, ElementId, Node};

/// Shockley diode parameters.
///
/// `i = I_s (e^{v/(n·V_T)} − 1)`, linearized per Newton iteration with a
/// voltage clamp to keep the exponential from overflowing before the
/// iteration converges.
///
/// # Example
///
/// ```
/// use nofis_circuit::DiodeParams;
///
/// let d = DiodeParams::default();
/// let (i, g) = d.evaluate(0.65);
/// assert!(i > 1e-6 && i < 1.0);
/// assert!(g > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiodeParams {
    /// Saturation current (A).
    pub i_s: f64,
    /// Ideality factor.
    pub n: f64,
    /// Thermal voltage (V); 25.85 mV at 300 K.
    pub v_t: f64,
}

impl Default for DiodeParams {
    fn default() -> Self {
        DiodeParams {
            i_s: 1e-14,
            n: 1.0,
            v_t: 0.02585,
        }
    }
}

impl DiodeParams {
    /// Junction voltage above which the exponential is linearized to keep
    /// Newton iterations finite (`n·V_T·ln(1e15)`, ≈ 0.89 V at defaults).
    fn v_crit(&self) -> f64 {
        self.n * self.v_t * (1e15_f64).ln()
    }

    /// Diode current and small-signal conductance at junction voltage `v`.
    pub fn evaluate(&self, v: f64) -> (f64, f64) {
        let nvt = self.n * self.v_t;
        let v_crit = self.v_crit();
        if v <= v_crit {
            let e = (v / nvt).exp();
            (self.i_s * (e - 1.0), self.i_s * e / nvt)
        } else {
            // Linear continuation beyond v_crit.
            let e = (v_crit / nvt).exp();
            let i0 = self.i_s * (e - 1.0);
            let g0 = self.i_s * e / nvt;
            (i0 + g0 * (v - v_crit), g0)
        }
    }
}

impl Circuit {
    /// Adds a junction diode conducting from `anode` to `cathode`.
    ///
    /// Internally modeled as a nonlinear element handled by the DC Newton
    /// loop (like MOSFETs): each iteration stamps the companion
    /// conductance `g_d` and current source `i_d − g_d·v_d`.
    pub fn diode(&mut self, anode: Node, cathode: Node, params: DiodeParams) -> ElementId {
        self.push_element(Element::Diode {
            anode,
            cathode,
            params,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitError;

    #[test]
    fn forward_drop_is_realistic() {
        // 1 mA through a silicon diode drops ≈ 0.6–0.75 V.
        let mut ckt = Circuit::new();
        let a = ckt.node();
        ckt.current_source(Node::GROUND, a, 1e-3);
        ckt.diode(a, Node::GROUND, DiodeParams::default());
        let dc = ckt.dc_solve().unwrap();
        let v = dc.voltage(a);
        assert!(v > 0.55 && v < 0.8, "forward drop {v}");
    }

    #[test]
    fn reverse_diode_blocks() {
        // Reverse-biased diode in series with a resistor: node follows the
        // resistor divider with only the tiny saturation current flowing.
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let mid = ckt.node();
        ckt.voltage_source(vin, Node::GROUND, 5.0);
        ckt.resistor(vin, mid, 1_000.0);
        ckt.diode(Node::GROUND, mid, DiodeParams::default()); // reverse
        let dc = ckt.dc_solve().unwrap();
        assert!(
            (dc.voltage(mid) - 5.0).abs() < 1e-3,
            "v = {}",
            dc.voltage(mid)
        );
    }

    #[test]
    fn rectifier_clamps_with_load() {
        // Diode + load resistor from a 5 V source through 1 kΩ: the diode
        // conducts and clamps near its forward drop.
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let mid = ckt.node();
        ckt.voltage_source(vin, Node::GROUND, 5.0);
        ckt.resistor(vin, mid, 1_000.0);
        ckt.diode(mid, Node::GROUND, DiodeParams::default());
        let dc = ckt.dc_solve().unwrap();
        let v = dc.voltage(mid);
        assert!(v > 0.5 && v < 0.9, "clamped voltage {v}");
        // KCL: resistor current equals diode current.
        let (i_d, _) = DiodeParams::default().evaluate(v);
        let i_r = (5.0 - v) / 1_000.0;
        assert!((i_d - i_r).abs() < 1e-6, "KCL: {i_d} vs {i_r}");
    }

    #[test]
    fn evaluate_is_monotone_and_continuous() {
        let d = DiodeParams::default();
        let mut last = f64::NEG_INFINITY;
        for k in 0..200 {
            let v = -0.5 + k as f64 * 0.01;
            let (i, g) = d.evaluate(v);
            assert!(i >= last - 1e-18, "current not monotone at v={v}");
            assert!(g >= 0.0);
            last = i;
        }
        // Continuity across the clamp.
        let vc = 0.02585 * (1e15_f64).ln();
        let (i1, _) = d.evaluate(vc - 1e-6);
        let (i2, _) = d.evaluate(vc + 1e-6);
        assert!((i1 - i2).abs() < 1e-3 * i1.abs().max(1e-12));
    }

    #[test]
    fn floating_diode_errors_cleanly() {
        let mut ckt = Circuit::new();
        let a = ckt.node();
        let _b = ckt.node();
        ckt.diode(a, Node::GROUND, DiodeParams::default());
        // Node `a` has no DC path except the diode; the reverse-biased
        // solution is fine, but floating node `_b` must be detected.
        assert!(matches!(
            ckt.dc_solve(),
            Err(CircuitError::SingularSystem { .. })
        ));
    }
}
