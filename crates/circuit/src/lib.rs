//! Modified-nodal-analysis (MNA) circuit simulator with adjoint
//! sensitivities.
//!
//! Built from scratch as the substrate for NOFIS's circuit test cases —
//! the paper's SPICE testbenches are proprietary, so the repository ships
//! its own simulator:
//!
//! * [`Circuit`] — netlist builder (R, C, I/V sources, VCCS, square-law
//!   MOSFET).
//! * [`Circuit::dc_solve`] — DC operating point with damped
//!   Newton–Raphson for nonlinear devices (square-law MOSFETs and
//!   exponential junction diodes).
//! * [`Circuit::transient`] — backward-Euler time-domain analysis with
//!   capacitor companion models.
//! * [`Circuit::ac_solve`] / [`Circuit::ac_sensitivity`] — complex
//!   small-signal analysis and adjoint gradients (one extra solve yields
//!   every element sensitivity), which makes the differentiable NOFIS loss
//!   affordable on circuit cases.
//! * [`OpampBench`] / [`ChargePumpBench`] — the two yield benches used by
//!   Table 1 (#6 and #8).
//!
//! See the type-level examples for usage.

#![deny(missing_docs)]

mod ac;
mod chargepump;
mod dc;
mod diode;
mod mosfet;
mod netlist;
mod opamp;
mod transient;

pub use ac::{AcSensitivity, AcSolution};
pub use chargepump::ChargePumpBench;
pub use dc::DcSolution;
pub use diode::DiodeParams;
pub use mosfet::{MosOperatingPoint, MosParams, MosType, Region};
pub use netlist::{Circuit, CircuitError, Element, ElementId, Node};
pub use opamp::{OpampBench, OpampDesign};
pub use transient::TransientSolution;
