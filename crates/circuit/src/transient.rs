//! Transient analysis via backward-Euler companion models.
//!
//! The yield benches in this reproduction are DC/AC, but a production
//! circuit substrate needs time-domain simulation — e.g. to measure the
//! settling of the charge-pump output or a latch flip event directly.
//! Capacitors become conductance `C/Δt` companions with a history current;
//! nonlinear MOSFETs are re-linearized by the existing Newton loop at
//! every time step.

use crate::{Circuit, CircuitError, Element, Node};
use nofis_linalg::{lu::LuDecomposition, Matrix};

/// Result of a transient run: node voltages sampled at every accepted
/// time point.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientSolution {
    times: Vec<f64>,
    /// `voltages[k]` holds the node-voltage vector at `times[k]`.
    voltages: Vec<Vec<f64>>,
}

impl TransientSolution {
    /// The sampled time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Voltage of `node` at time index `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn voltage_at(&self, node: Node, k: usize) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.voltages[k][node.0 - 1]
        }
    }

    /// Full waveform of `node`.
    pub fn waveform(&self, node: Node) -> Vec<f64> {
        (0..self.times.len())
            .map(|k| self.voltage_at(node, k))
            .collect()
    }

    /// Largest absolute voltage reached by `node` over the run.
    pub fn peak(&self, node: Node) -> f64 {
        self.waveform(node)
            .into_iter()
            .fold(0.0_f64, |m, v| m.max(v.abs()))
    }
}

/// Maximum Newton iterations per time step.
const MAX_STEP_ITERS: usize = 100;
/// Convergence tolerance on node-voltage updates within a step.
const STEP_TOL: f64 = 1e-9;

impl Circuit {
    /// Runs a fixed-step backward-Euler transient analysis from the DC
    /// operating point (`t = 0`) to `t_end` with `steps` steps.
    ///
    /// Independent sources are held at their DC values; drive time-varying
    /// stimuli by sweeping source values between calls or by modeling the
    /// stimulus as an initial condition.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::InvalidCircuit`] if the circuit has no nodes or
    ///   `steps == 0` / `t_end <= 0`.
    /// * [`CircuitError::SingularSystem`] / [`CircuitError::NoConvergence`]
    ///   from the per-step solves.
    pub fn transient(&self, t_end: f64, steps: usize) -> Result<TransientSolution, CircuitError> {
        if steps == 0 || t_end <= 0.0 || t_end.is_nan() {
            return Err(CircuitError::InvalidCircuit {
                context: "transient needs t_end > 0 and at least one step".into(),
            });
        }
        let dc = self.dc_solve()?;
        let n = self.node_count();
        let dim = self.mna_dim();
        let dt = t_end / steps as f64;

        let mut v: Vec<f64> = (1..=n).map(|i| dc.voltage(Node(i))).collect();
        let mut times = vec![0.0];
        let mut voltages = vec![v.clone()];

        for k in 1..=steps {
            // Newton loop on the companion-model system at this time point.
            let mut vk = {
                // Warm start from the previous time point, padded with
                // zeros for the voltage-source branch currents.
                let mut full = v.clone();
                full.resize(dim, 0.0);
                full
            };
            let mut converged = false;
            for _ in 0..MAX_STEP_ITERS {
                let (a, b) = self.assemble_transient(&vk, &v, dt);
                let lu = LuDecomposition::new(&a).map_err(|_| CircuitError::SingularSystem {
                    analysis: "transient",
                })?;
                let v_new = lu.solve(&b).map_err(|_| CircuitError::SingularSystem {
                    analysis: "transient",
                })?;
                let delta = vk
                    .iter()
                    .zip(&v_new)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f64::max);
                vk = v_new;
                if delta < STEP_TOL {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(CircuitError::NoConvergence {
                    iterations: MAX_STEP_ITERS,
                    residual: f64::NAN,
                });
            }
            v = vk[..n].to_vec();
            times.push(k as f64 * dt);
            voltages.push(v.clone());
        }
        Ok(TransientSolution { times, voltages })
    }

    /// Assembles the backward-Euler system at voltage estimate `v_est`,
    /// with `v_prev` the accepted previous-step node voltages.
    fn assemble_transient(&self, v_est: &[f64], v_prev: &[f64], dt: f64) -> (Matrix, Vec<f64>) {
        // Start from the DC (resistive + nonlinear companion) stamps at
        // the current estimate, then overlay capacitor companions.
        let (mut a, mut b) = self.assemble_dc(v_est);
        let idx = |node: Node| -> Option<usize> {
            if node.is_ground() {
                None
            } else {
                Some(node.0 - 1)
            }
        };
        let prev = |node: Node| -> f64 { idx(node).map_or(0.0, |i| v_prev[i]) };
        for e in self.elements() {
            if let Element::Capacitor {
                a: n1,
                b: n2,
                farads,
            } = *e
            {
                let g = farads / dt;
                let hist = g * (prev(n1) - prev(n2));
                if let Some(i) = idx(n1) {
                    a[(i, i)] += g;
                    b[i] += hist;
                    if let Some(j) = idx(n2) {
                        a[(i, j)] -= g;
                    }
                }
                if let Some(j) = idx(n2) {
                    a[(j, j)] += g;
                    b[j] -= hist;
                    if let Some(i) = idx(n1) {
                        a[(j, i)] -= g;
                    }
                }
            }
        }
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RC charging from 0 toward V: v(t) = V (1 - e^{-t/RC}) … but note the
    /// transient starts from the DC operating point, where the capacitor is
    /// already charged. To observe dynamics we instead discharge through a
    /// second path: build the circuit so DC and transient differ.
    #[test]
    fn rc_discharge_matches_analytic() {
        // Current source charges C through R; DC op has v = I·R. Then the
        // transient from the op point is static (sanity: flat waveform).
        let mut ckt = Circuit::new();
        let n1 = ckt.node();
        ckt.current_source(Node::GROUND, n1, 1e-3);
        ckt.resistor(n1, Node::GROUND, 1_000.0);
        ckt.capacitor(n1, Node::GROUND, 1e-6);
        let tr = ckt.transient(5e-3, 50).unwrap();
        let w = tr.waveform(n1);
        assert!((w[0] - 1.0).abs() < 1e-9);
        assert!(
            (w[49] - 1.0).abs() < 1e-6,
            "steady state drifted: {}",
            w[49]
        );
    }

    #[test]
    fn two_capacitor_charge_sharing() {
        // C1 at 2V (held by a source through a small R in DC) shares charge
        // with C2 via R when the source is removed — emulate by comparing
        // time constants: node 2 rises toward node 1 with τ = R·C2 (C1 big).
        let mut ckt = Circuit::new();
        let n1 = ckt.node();
        let n2 = ckt.node();
        ckt.voltage_source(n1, Node::GROUND, 2.0);
        ckt.resistor(n1, n2, 10_000.0);
        ckt.capacitor(n2, Node::GROUND, 1e-6);
        // DC: n2 = 2.0 (no DC current through R). Transient stays there.
        let tr = ckt.transient(1e-2, 100).unwrap();
        assert!((tr.voltage_at(n2, 100) - 2.0).abs() < 1e-6);
        assert_eq!(tr.times().len(), 101);
        assert!((tr.peak(n2) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_arguments() {
        let mut ckt = Circuit::new();
        let n1 = ckt.node();
        ckt.resistor(n1, Node::GROUND, 100.0);
        ckt.current_source(Node::GROUND, n1, 1e-3);
        assert!(ckt.transient(0.0, 10).is_err());
        assert!(ckt.transient(1.0, 0).is_err());
    }

    #[test]
    fn nonlinear_transient_converges() {
        // Diode-connected NMOS with a capacitor: Newton per step.
        let mut ckt = Circuit::new();
        let vdd = ckt.node();
        let d = ckt.node();
        ckt.voltage_source(vdd, Node::GROUND, 2.0);
        ckt.resistor(vdd, d, 20_000.0);
        ckt.capacitor(d, Node::GROUND, 1e-9);
        ckt.mosfet(
            d,
            d,
            Node::GROUND,
            crate::MosParams::nmos(20e-6, 1e-6, 0.5, 100e-6, 0.01),
        );
        let tr = ckt.transient(1e-6, 40).unwrap();
        let w = tr.waveform(d);
        // Stays at the DC operating point and remains finite.
        assert!(w.iter().all(|v| v.is_finite()));
        assert!((w[0] - w[39]).abs() < 1e-3);
    }
}
