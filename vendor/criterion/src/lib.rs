//! Minimal vendored stand-in for `criterion`.
//!
//! Offline build environment — the real criterion cannot be fetched. This
//! harness keeps the same source surface used by the workspace's benches
//! (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`) and
//! reports mean/min wall-clock time per iteration on stdout. There is no
//! statistical analysis, HTML report, or outlier rejection.

#![deny(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(v: T) -> T {
    hint::black_box(v)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirrors upstream's CLI hook; arguments are ignored here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{id}"), 100, &mut f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs `f` with a borrowed input as a benchmark named by `id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; we print nothing).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: format!("{function}"),
            parameter: format!("{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` invocations of `f` (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        hint::black_box(f()); // warm-up, also defeats dead-code elimination
        for _ in 0..self.sample_size {
            let start = Instant::now();
            hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label}: no samples");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "  {label}: mean {:?}, min {:?} ({} samples)",
        mean,
        min,
        bencher.samples.len()
    );
}

/// Collects benchmark functions into a runnable group, as in upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
