//! `#[derive(Serialize)]` for the vendored stand-in `serde` crate.
//!
//! Supports structs with named fields (the only shape this workspace
//! derives). Written against `proc_macro` directly — no `syn`/`quote`,
//! since the build environment is offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored JSON-writing trait) for a
/// struct with named fields.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`) and visibility ahead of `struct`.
    let name = loop {
        match tokens.get(i) {
            None => return Err("expected `struct`".to_string()),
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                match tokens.get(i + 1) {
                    Some(TokenTree::Ident(name)) => break name.to_string(),
                    _ => return Err("expected struct name".to_string()),
                }
            }
            _ => i += 1,
        }
    };

    // Find the brace-delimited field block (skipping any generics, which
    // this workspace does not use on serialized types).
    let fields_group = tokens
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .ok_or_else(|| format!("#[derive(Serialize)] on `{name}`: only structs with named fields are supported"))?;

    let fields = named_fields(fields_group)?;

    let mut body = String::from("out.push('{');\n");
    for (idx, field) in fields.iter().enumerate() {
        if idx > 0 {
            body.push_str("out.push(',');\n");
        }
        body.push_str(&format!(
            "out.push_str(\"\\\"{field}\\\":\");\n::serde::Serialize::serialize_json(&self.{field}, out);\n"
        ));
    }
    body.push_str("out.push('}');");

    let impl_src = format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    fn serialize_json(&self, out: &mut ::std::string::String) {{\n        {body}\n    }}\n}}\n"
    );
    impl_src
        .parse()
        .map_err(|e| format!("serde_derive internal error: {e:?}"))
}

/// Extracts field names from the token stream of a named-field block.
fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes and visibility.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // `#` + `[...]`
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1; // `pub(crate)` etc.
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match tokens.get(i) {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("unexpected token in struct fields: {other}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}` (tuple structs unsupported)")),
        }
        fields.push(name);
        // Skip the type up to the next top-level comma (track angle depth so
        // commas inside generics do not split fields).
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}
