//! Minimal vendored stand-in for `proptest`.
//!
//! The build environment is offline, so this crate reimplements the slice of
//! the proptest surface this workspace uses: the `proptest!` macro over
//! functions with `arg in strategy` parameters, `prop_assert!`,
//! `ProptestConfig::with_cases`, numeric range strategies, and
//! `prop::collection::vec`. Cases are drawn from a deterministic per-test
//! RNG (seeded from the test name and case index) so failures reproduce
//! across runs. **No shrinking** is performed: a failing case reports the
//! case index and message and panics immediately.

#![deny(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    /// Alias so `prop::collection::vec(...)` works as in upstream proptest.
    pub use crate as prop;
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in -1.0f64..1.0, b in -1.0f64..1.0) {
///         prop_assert!((a + b - (b + a)).abs() < 1e-15);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng =
                        $crate::test_runner::rng_for(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    let __proptest_result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = __proptest_result {
                        ::std::panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// the formatted message, if given) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
}
