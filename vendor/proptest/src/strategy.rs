//! Value-generation strategies.

use rand::distributions::uniform::SampleRange;
use rand::rngs::StdRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking; a
/// strategy simply draws a fresh value per case.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}

range_strategy!(f64, usize, u64, u32, i64, i32);

/// A constant strategy, mirroring `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}
