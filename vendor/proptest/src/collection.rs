//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::distributions::uniform::SampleRange;
use rand::rngs::StdRng;
use std::ops::Range;

/// Strategy producing `Vec`s whose length is drawn from a range and whose
/// elements come from an inner strategy.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors with lengths in `size`, elements from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = self.size.clone().sample_single(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
