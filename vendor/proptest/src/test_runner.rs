//! Test configuration and case-level plumbing.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (produced by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic per-(test, case) RNG so failures reproduce across runs.
pub fn rng_for(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}
