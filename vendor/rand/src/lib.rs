//! Minimal, self-contained reimplementation of the subset of the `rand` 0.8
//! API that this workspace uses.
//!
//! The build environment is fully offline (no crates.io access), so the
//! workspace vendors the handful of external crates it needs. This crate is
//! **not** the upstream `rand`: it provides the same names and signatures for
//! the calls the workspace makes (`StdRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range`, `Rng::sample`, `SliceRandom::shuffle`, …) backed by a
//! deterministic xoshiro256++ generator. It is adequate for Monte Carlo
//! estimation and tests; it makes no cryptographic claims.

#![deny(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

use std::fmt;

/// Error type carried by [`RngCore::try_fill_bytes`].
///
/// The vendored generators are infallible, so this is only ever constructed
/// by downstream adapters that need to surface their own failures.
#[derive(Debug)]
pub struct Error {
    message: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(message: &'static str) -> Self {
        Error { message }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: a source of random bits.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure instead of
    /// panicking. The vendored generators never fail.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Convenience methods layered on any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples a value from the given distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 and builds the
    /// generator from it. Deterministic across runs and platforms.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut sm);
            let bytes = x.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// A generator whose complete internal state can be exported and restored.
///
/// Upstream `rand` has no such trait; the workspace needs one so a training
/// run can persist its RNG *stream cursor* (not just the seed) in a durable
/// checkpoint and resume bitwise-identically. The state words are exactly
/// the generator's internal words — restoring them reproduces the very next
/// draw the original generator would have made.
pub trait StateRng: RngCore {
    /// Exports the generator's full internal state.
    fn save_state(&self) -> [u64; 4];

    /// Overwrites the generator's internal state with a previously exported
    /// one. The next draw continues the saved stream exactly.
    fn load_state(&mut self, state: [u64; 4]);
}

impl<R: StateRng + ?Sized> StateRng for &mut R {
    fn save_state(&self) -> [u64; 4] {
        (**self).save_state()
    }
    fn load_state(&mut self, state: [u64; 4]) {
        (**self).load_state(state)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5..1.5);
            assert!((-2.5..1.5).contains(&v));
            let k = rng.gen_range(3usize..17);
            assert!((3..17).contains(&k));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn boxed_dyn_rng_works() {
        let mut rng: Box<dyn RngCore> = Box::new(StdRng::seed_from_u64(5));
        let u: f64 = rng.gen();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        use super::StateRng;
        let mut a = StdRng::seed_from_u64(99);
        let _ = a.next_u64();
        let state = a.save_state();
        let expect: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let mut b = StdRng::seed_from_u64(0);
        b.load_state(state);
        let got: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(expect, got);
        // The trait is object-usable through &mut.
        let mut c = StdRng::seed_from_u64(3);
        let mut via_ref: &mut StdRng = &mut c;
        via_ref.load_state(state);
        assert_eq!(c.next_u64(), expect[0]);
        // An all-zero snapshot is remapped, never a frozen fixed point.
        let mut z = StdRng::seed_from_u64(1);
        z.load_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn mean_of_uniform_is_near_half() {
        let mut rng = StdRng::seed_from_u64(1234);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 5e-3, "mean {mean}");
    }
}
