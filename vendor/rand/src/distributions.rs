//! Sampling distributions and uniform range sampling.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value using `rng` as the entropy source.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "standard" distribution: `f64` uniform on `[0, 1)`, integers uniform
/// over their full domain, `bool` fair.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod uniform {
    //! Uniform sampling from ranges, mirroring `rand::distributions::uniform`.

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that supports single-value uniform sampling.
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let v = self.start + (self.end - self.start) * u;
            // Floating-point rounding can land exactly on `end`; step back.
            if v >= self.end {
                self.end - (self.end - self.start) * f64::EPSILON
            } else {
                v
            }
        }
    }

    impl SampleRange<f64> for RangeInclusive<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "cannot sample empty range");
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            lo + (hi - lo) * u
        }
    }

    /// Draws uniformly from `[0, span)` without modulo bias.
    fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = rng.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    macro_rules! int_range_impls {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = self.end.abs_diff(self.start) as u64;
                    let off = uniform_below(rng, span);
                    ((self.start as i128) + off as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = hi.abs_diff(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let off = uniform_below(rng, span + 1);
                    ((lo as i128) + off as i128) as $t
                }
            }
        )*};
    }

    int_range_impls!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);
}
