//! Concrete generators.

use crate::{RngCore, SeedableRng, StateRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Upstream `rand` backs `StdRng` with ChaCha12; this vendored stand-in uses
/// xoshiro256++ (Blackman & Vigna), which passes BigCrush and is more than
/// adequate for Monte Carlo work. It is explicitly **not** cryptographic.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(word);
        }
        if s.iter().all(|&w| w == 0) {
            // The all-zero state is a fixed point of xoshiro; remap it.
            let mut sm = 0x9e37_79b9_7f4a_7c15u64;
            for w in &mut s {
                *w = crate::splitmix64(&mut sm);
            }
        }
        StdRng { s }
    }
}

impl StateRng for StdRng {
    fn save_state(&self) -> [u64; 4] {
        self.s
    }

    fn load_state(&mut self, state: [u64; 4]) {
        // A live xoshiro state is never all-zero (from_seed remaps it and
        // every transition preserves non-zeroness), but a hand-crafted or
        // corrupted snapshot could be; remap it the same way from_seed does
        // rather than freezing the generator at its fixed point.
        if state.iter().all(|&w| w == 0) {
            let mut sm = 0x9e37_79b9_7f4a_7c15u64;
            for w in &mut self.s {
                *w = crate::splitmix64(&mut sm);
            }
        } else {
            self.s = state;
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}
