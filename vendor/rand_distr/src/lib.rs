//! Minimal vendored stand-in for `rand_distr` 0.4: just the pieces this
//! workspace uses (`StandardNormal` and the [`Distribution`] trait
//! re-export). See the vendored `rand` crate for why this exists.

#![deny(missing_docs)]

pub use rand::distributions::Distribution;
use rand::RngCore;

/// The standard normal distribution `N(0, 1)` over `f64`.
///
/// Sampling uses the Box–Muller transform; each draw consumes two uniform
/// deviates and returns one normal deviate (no cached spare, so the
/// distribution stays stateless like upstream's).
#[derive(Clone, Copy, Debug, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // u1 in (0, 1] so ln(u1) is finite; u2 in [0, 1).
        let u1 = ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(2024);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let z: f64 = rng.sample(StandardNormal);
            assert!(z.is_finite());
            sum += z;
            sum_sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn tail_mass_is_plausible() {
        let mut rng = StdRng::seed_from_u64(77);
        let n = 100_000;
        let beyond_2 = (0..n)
            .filter(|_| {
                let z: f64 = rng.sample(StandardNormal);
                z > 2.0
            })
            .count();
        let frac = beyond_2 as f64 / n as f64;
        // P(Z > 2) ≈ 0.02275.
        assert!((frac - 0.02275).abs() < 0.004, "frac {frac}");
    }
}
