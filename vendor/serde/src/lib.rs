//! Minimal vendored stand-in for `serde`, providing exactly what this
//! workspace needs: a [`Serialize`] trait that renders a value as JSON into
//! a string buffer, and (behind the `derive` feature) a `#[derive(Serialize)]`
//! macro for structs with named fields. The build environment is offline, so
//! the real serde cannot be fetched; this keeps the public surface
//! (`serde::Serialize`, `serde_json::to_string`) source-compatible for the
//! code in this repository.

#![deny(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A type that can render itself as JSON.
///
/// This intentionally collapses serde's `Serializer` abstraction: the only
/// consumer in this workspace is `serde_json`, so values write JSON text
/// directly into a `String`.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out)
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buf(*self as i128).as_str());
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn itoa_buf(v: i128) -> String {
    v.to_string()
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            // Shortest round-trippable representation, always with enough
            // precision to reconstruct the value.
            let mut s = format!("{self}");
            if s.parse::<f64>() != Ok(*self) {
                s = format!("{self:e}");
            }
            out.push_str(&s);
        } else {
            // JSON has no NaN/Inf; mirror the lenient encoders that emit null.
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        (*self as f64).serialize_json(out)
    }
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out)
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out)
    }
}

/// Appends `s` as a quoted, escaped JSON string.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render_as_json() {
        let mut out = String::new();
        1.5f64.serialize_json(&mut out);
        out.push(',');
        42usize.serialize_json(&mut out);
        out.push(',');
        true.serialize_json(&mut out);
        out.push(',');
        "a\"b".serialize_json(&mut out);
        assert_eq!(out, "1.5,42,true,\"a\\\"b\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        f64::NAN.serialize_json(&mut out);
        out.push(',');
        f64::INFINITY.serialize_json(&mut out);
        assert_eq!(out, "null,null");
    }

    #[test]
    fn containers_nest() {
        let mut out = String::new();
        vec![vec![1u32, 2], vec![3]].serialize_json(&mut out);
        assert_eq!(out, "[[1,2],[3]]");
        let mut out = String::new();
        Option::<f64>::None.serialize_json(&mut out);
        assert_eq!(out, "null");
    }

    #[test]
    fn floats_round_trip() {
        for v in [0.1, 1e-300, -3.25e17, 123456789.123456] {
            let mut out = String::new();
            v.serialize_json(&mut out);
            assert_eq!(out.parse::<f64>().unwrap(), v);
        }
    }
}
