//! Minimal vendored stand-in for `serde_json`: `to_string` and
//! `to_string_pretty` over the vendored `serde::Serialize` trait. Encoding
//! never fails (non-finite floats encode as `null`), so the `Result` wrapper
//! exists purely for source compatibility with the real crate.

#![deny(missing_docs)]

use std::fmt;

/// JSON encoding error (never produced by this vendored encoder; kept for
/// signature compatibility).
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indentation).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    Ok(prettify(&compact))
}

/// Re-indents a compact JSON document. Assumes valid JSON input, which is
/// what `to_string` produces.
fn prettify(json: &str) -> String {
    let mut out = String::with_capacity(json.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = json.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                let close = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&close) {
                    out.push(close);
                    chars.next();
                } else {
                    indent += 1;
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let v = vec![1.0f64, 2.5];
        assert_eq!(to_string(&v).unwrap(), "[1,2.5]");
    }

    #[test]
    fn pretty_indents_and_preserves_strings() {
        let mut obj = String::new();
        obj.push_str("{\"a\":[1,2],\"b\":\"x{,}y\",\"c\":{}}");
        // Pretty-print the raw document through the same path a struct takes.
        let pretty = prettify(&obj);
        assert!(pretty.contains("\"a\": [\n"));
        assert!(pretty.contains("\"x{,}y\""), "{pretty}");
        assert!(pretty.contains("\"c\": {}"), "{pretty}");
    }
}
