//! SRAM-cell-style yield analysis with the MNA circuit simulator.
//!
//! ```text
//! cargo run --release --example sram_style_yield
//! ```
//!
//! The paper's motivating application is SRAM yield: each cell must fail
//! with probability below ~1e-6. This example builds a latch-strength
//! proxy bench with the workspace's own circuit simulator — a
//! diode-connected NMOS load line whose trip voltage must stay above a
//! margin under threshold-voltage variation — and estimates its failure
//! probability with NOFIS, cross-checked by subset simulation.

use nofis_baselines::{RareEventEstimator, SusEstimator};
use nofis_circuit::{Circuit, MosParams, Node};
use nofis_core::{telemetry, Levels, Nofis, NofisConfig};
use nofis_prob::{CountingOracle, LimitState};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A read-disturb-style margin bench: two cross-coupled-inverter halves
/// are abstracted as diode-connected pull-downs fighting a resistive
/// pull-up; the cell "flips" (fails) when the stored-node voltage rises
/// above a trip margin. Six standard-Gaussian variables perturb the
/// threshold voltages and widths of the two NMOS devices and the two
/// pull-up strengths.
struct SramMargin {
    trip_voltage: f64,
}

impl SramMargin {
    fn node_voltage(&self, x: &[f64]) -> f64 {
        // Device parameters under variation.
        let vth1 = 0.5 + 0.06 * x[0];
        let vth2 = 0.5 + 0.06 * x[1];
        let w1 = (10e-6 * (1.0 + 0.08 * x[2])).max(1e-7);
        let w2 = (10e-6 * (1.0 + 0.08 * x[3])).max(1e-7);
        let r1 = (40_000.0 * (1.0 + 0.10 * x[4])).max(1_000.0);
        let r2 = (40_000.0 * (1.0 + 0.10 * x[5])).max(1_000.0);

        // Access path: VDD -> pull-up R1 -> storage node with NMOS1 to
        // ground; the second half loads the node through R2/NMOS2.
        let mut ckt = Circuit::new();
        let vdd = ckt.node();
        let sn = ckt.node(); // storage node
        let half = ckt.node();
        ckt.voltage_source(vdd, Node::GROUND, 1.2);
        ckt.resistor(vdd, sn, r1);
        ckt.mosfet(
            sn,
            sn,
            Node::GROUND,
            MosParams::nmos(w1, 1e-6, vth1, 120e-6, 0.03),
        );
        ckt.resistor(sn, half, r2);
        ckt.mosfet(
            half,
            half,
            Node::GROUND,
            MosParams::nmos(w2, 1e-6, vth2, 120e-6, 0.03),
        );

        let dc = ckt.dc_solve().expect("latch bench solves");
        dc.voltage(sn)
    }
}

impl LimitState for SramMargin {
    fn dim(&self) -> usize {
        6
    }

    // Fails when the storage node is pulled above the trip voltage.
    fn value(&self, x: &[f64]) -> f64 {
        self.trip_voltage - self.node_voltage(x)
    }

    fn name(&self) -> &str {
        "sram-margin"
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = SramMargin { trip_voltage: 0.84 };
    println!(
        "nominal storage-node voltage: {:.3} V (trip at {:.2} V)",
        bench.node_voltage(&[0.0; 6]),
        bench.trip_voltage
    );

    // NOFIS with automatic nested levels (the paper's future-work
    // threshold selection, implemented as a pilot-quantile schedule).
    let oracle = CountingOracle::new(&bench);
    let config = NofisConfig {
        levels: Levels::AdaptiveQuantile {
            max_stages: 6,
            p0: 0.12,
            pilot: 150,
        },
        layers_per_stage: 6,
        hidden: 24,
        epochs: 15,
        batch_size: 250,
        n_is: 1_000,
        // The margin g is measured in volts (O(0.2) spread), so the
        // temperature must be larger than the paper's O(10) defaults —
        // τ only has meaning relative to the scale of g.
        tau: 80.0,
        minibatch: 4096,
        // Stage progress on stderr (the adaptive schedule's pilot levels
        // show up live); NOFIS_LOG / NOFIS_TRACE_FILE override.
        telemetry: telemetry::Settings::stderr(telemetry::Level::Info),
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let (trained, result) = Nofis::new(config)?.run(&oracle, &mut rng)?;
    println!(
        "\nNOFIS estimate : {:.3e}  ({} calls)",
        result.estimate,
        oracle.calls()
    );
    println!("learned levels : {:?}", trained.levels());

    // Cross-check with subset simulation.
    let oracle2 = CountingOracle::new(&bench);
    let sus = SusEstimator::new(3_000, 0.1, 8);
    let mut rng2 = StdRng::seed_from_u64(8);
    let p_sus = sus.estimate(&oracle2, &mut rng2);
    println!(
        "SUS cross-check: {:.3e}  ({} calls)",
        p_sus,
        oracle2.calls()
    );

    if result.estimate > 0.0 && p_sus > 0.0 {
        let ratio = result.estimate / p_sus;
        println!("agreement      : NOFIS/SUS = {ratio:.2}");
    }
    Ok(())
}
