//! Serve-style multi-job walkthrough: a small fleet of concurrent NOFIS
//! estimations under supervision — priorities, deadlines, retry policies,
//! admission control — on one shared worker pool.
//!
//! ```text
//! cargo run --release --example multi_job
//! ```
//!
//! Every submitted job reaches a *terminal typed state* (done, failed,
//! shed, deadline, suspended, panicked) — the example prints the final
//! table and exits 0 as long as that invariant holds, even when individual
//! jobs fail.
//!
//! This is also the CI `job-chaos` driver: with `NOFIS_FAULT_PLAN` set
//! (e.g. `job_panic@0;deadline_storm@1;queue_overflow@2`) faults are
//! injected at the scheduler's seams, and with `NOFIS_TRACE_FILE=run.jsonl`
//! the full per-job lifecycle lands in a JSONL trace for
//! `nofis-trace summary --by-job`. Set `NOFIS_CKPT_DIR` to give every job
//! a durable, namespaced checkpoint directory — a deadline-preempted job
//! can then be resubmitted and resumes bitwise-identically.

use nofis_core::{Levels, NofisConfig};
use nofis_jobs::{JobRunner, JobSpec, RetryPolicy, RunnerConfig, ShutdownMode};
use nofis_testcases::{Leaf, Ring};
use std::sync::Arc;
use std::time::Duration;

fn ring_config() -> NofisConfig {
    NofisConfig {
        levels: Levels::Fixed(vec![3.0, 2.0, 1.0, 0.5, 0.0]),
        layers_per_stage: 4,
        hidden: 16,
        epochs: 10,
        batch_size: 100,
        n_is: 1_000,
        tau: 15.0,
        learning_rate: 8e-3,
        ..Default::default()
    }
}

fn leaf_config() -> NofisConfig {
    NofisConfig {
        levels: Levels::Fixed(vec![15.0, 8.0, 3.0, 0.0]),
        layers_per_stage: 4,
        hidden: 16,
        epochs: 10,
        batch_size: 100,
        n_is: 1_000,
        tau: 20.0,
        ..Default::default()
    }
}

fn main() {
    // Two concurrent job lanes over the shared pool; a small queue so the
    // admission-control path is reachable under chaos plans.
    let runner = JobRunner::new(RunnerConfig {
        workers: 2,
        queue_capacity: 4,
    });

    let mut specs = vec![
        JobSpec::new("ring-hi", ring_config(), Arc::new(Ring::default()), 11),
        JobSpec::new("leaf", leaf_config(), Arc::new(Leaf), 22),
        JobSpec::new("ring-lo", ring_config(), Arc::new(Ring::default()), 33),
        JobSpec::new(
            "ring-deadline",
            ring_config(),
            Arc::new(Ring::default()),
            44,
        ),
        JobSpec::new("leaf-retry", leaf_config(), Arc::new(Leaf), 55),
    ];
    specs[0].priority = 2; // runs (and survives shedding) first
    specs[1].priority = 1;
    specs[3].deadline = Some(Duration::from_secs(120)); // generous in CI
    specs[4].retry = RetryPolicy {
        max_retries: 2,
        base: Duration::from_millis(20),
        cap: Duration::from_millis(200),
    };

    let submitted = specs.len();
    let handles: Vec<_> = specs.into_iter().map(|s| runner.submit(s)).collect();

    println!("submitted {submitted} jobs; waiting for terminal states...\n");
    println!("{:<6} {:<14} {:<10} detail", "id", "name", "state");
    let mut terminal = 0;
    for handle in &handles {
        let detail = match handle.wait() {
            Ok(result) => {
                terminal += 1;
                format!(
                    "done       estimate={:.3e} hits={}",
                    result.estimate, result.hits
                )
            }
            Err(err) => {
                terminal += 1;
                format!("{:<10} {err}", state_of(&err))
            }
        };
        println!(
            "{:<6} {:<14} {detail}",
            handle.id().to_string(),
            handle.name()
        );
    }

    // Drain: pending retries (if a chaos plan triggered any) finish too.
    runner.shutdown(ShutdownMode::Drain);

    println!("\n{terminal}/{submitted} jobs reached a terminal state");
    if terminal != submitted {
        // Unreachable by construction (wait() blocks for a terminal
        // result); kept as the example's hard invariant for CI.
        std::process::exit(1);
    }
}

fn state_of(err: &nofis_jobs::JobError) -> &'static str {
    use nofis_jobs::JobError::*;
    match err {
        Shed { .. } => "shed",
        DeadlineExceeded { .. } => "deadline",
        Suspended { .. } => "suspended",
        Panicked { .. } => "panicked",
        Failed { .. } => "failed",
    }
}
