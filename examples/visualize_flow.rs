//! Visualize a learned 2-D proposal distribution as terminal ASCII art.
//!
//! ```text
//! cargo run --release --example visualize_flow [-- <leaf|ring|fourpetal|banana>]
//! ```
//!
//! Trains NOFIS on the chosen 2-D case and renders (left to right) the
//! base distribution `p`, the learned proposal `q_MK`, and the optimal
//! proposal `q* ∝ p·1[g ≤ 0]` — a terminal rendition of the paper's
//! Figure 2.

use nofis_core::{Levels, Nofis, NofisConfig};
use nofis_prob::{LimitState, StandardGaussian};
use nofis_testcases::{Banana, FourPetal, Leaf, Ring};
use rand::rngs::StdRng;
use rand::SeedableRng;

const RES: usize = 41;
const EXTENT: f64 = 6.0;
const RAMP: &[u8] = b" .:-=+*#%@";

fn raster(mut f: impl FnMut(f64, f64) -> f64) -> Vec<f64> {
    let step = 2.0 * EXTENT / (RES - 1) as f64;
    let mut v = Vec::with_capacity(RES * RES);
    for iy in 0..RES {
        for ix in 0..RES {
            v.push(f(-EXTENT + ix as f64 * step, -EXTENT + iy as f64 * step));
        }
    }
    v
}

fn rows(values: &[f64]) -> Vec<String> {
    let max = values.iter().copied().fold(1e-300, f64::max);
    (0..RES)
        .rev()
        .map(|iy| {
            (0..RES)
                .map(|ix| {
                    let t = (values[iy * RES + ix] / max).max(0.0).sqrt();
                    RAMP[((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1)]
                        as char
                })
                .collect()
        })
        .collect()
}

fn run(ls: &(impl LimitState + ?Sized + Sync), levels: Vec<f64>) {
    let config = NofisConfig {
        levels: Levels::Fixed(levels),
        layers_per_stage: 8,
        hidden: 24,
        epochs: 25,
        batch_size: 400,
        n_is: 100,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(5);
    let trained = Nofis::new(config)
        .expect("valid config")
        .train(&ls, &mut rng)
        .expect("training failed");

    let p = StandardGaussian::new(2);
    let base = raster(|x, y| p.log_density(&[x, y]).exp());
    let learned = raster(|x, y| trained.log_density(&[x, y]).exp());
    let optimal = raster(|x, y| {
        if ls.value(&[x, y]) <= 0.0 {
            p.log_density(&[x, y]).exp()
        } else {
            0.0
        }
    });

    println!(
        "{:^RES$}   {:^RES$}   {:^RES$}",
        "base p",
        "learned q_MK",
        "optimal q*",
        RES = RES
    );
    for ((a, b), c) in rows(&base)
        .into_iter()
        .zip(rows(&learned))
        .zip(rows(&optimal))
    {
        println!("{a}   {b}   {c}");
    }
}

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "leaf".to_string())
        .to_lowercase();
    match which.as_str() {
        "leaf" => run(&Leaf, vec![26.0, 15.0, 8.0, 3.0, 0.0]),
        "fourpetal" => run(&FourPetal::default(), vec![26.0, 15.0, 8.0, 3.0, 0.0]),
        "ring" => run(&Ring::default(), vec![3.0, 2.0, 1.0, 0.5, 0.0]),
        "banana" => run(&Banana::default(), vec![3.0, 2.0, 1.0, 0.5, 0.0]),
        other => panic!("unknown case {other}; use leaf|ring|fourpetal|banana"),
    }
}
