//! Quickstart: estimate the probability of a rare circuit-style failure
//! event with NOFIS, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example estimates the paper's "Leaf" event (two failure disks deep
//! in the tail of a 2-D standard Gaussian, P ≈ 4.7e-6), compares against
//! plain Monte Carlo at the same budget, and prints the measured call
//! counts.
//!
//! Progress telemetry prints to stderr by default (stage spans, ladder
//! outcome). Tune it with `NOFIS_LOG` (`off`, `error`, `warn`, `info`,
//! `debug`, `trace`), and write a full machine-readable JSONL trace with
//! `NOFIS_TRACE_FILE=run.jsonl` (inspect it with `nofis-trace summary`).
//!
//! Set `NOFIS_CKPT_DIR=ckpts` (optionally `NOFIS_CKPT_EVERY=N`) to write
//! durable training checkpoints; if the process is killed, re-running the
//! example resumes from the newest one and produces bitwise-identical
//! results (DESIGN.md §11).

use nofis_core::{telemetry, Levels, Nofis, NofisConfig};
use nofis_prob::{log_error, monte_carlo, CountingOracle};
use nofis_testcases::Leaf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2024);

    // 1. The failure event: a `LimitState` with g(x) <= 0 on failure.
    //    Wrap it in a CountingOracle to meter simulator calls.
    let oracle = CountingOracle::new(&Leaf);

    // 2. Configure NOFIS. The nested levels follow the paper's Figure 2
    //    ladder for this case; everything else is the nominal setup.
    let config = NofisConfig {
        levels: Levels::Fixed(vec![15.0, 8.0, 3.0, 0.0]),
        layers_per_stage: 8,
        hidden: 24,
        epochs: 20,
        batch_size: 400,
        n_is: 1_000,
        tau: 20.0,
        // Per-stage progress on stderr; NOFIS_LOG / NOFIS_TRACE_FILE
        // override this (telemetry never changes the numbers).
        telemetry: telemetry::Settings::stderr(telemetry::Level::Info),
        ..Default::default()
    };
    let nofis = Nofis::new(config)?;

    // 3. Train the flow and estimate. With `NOFIS_CKPT_DIR` set this
    //    resumes a previously killed run instead of starting over (and is
    //    exactly `Nofis::run` otherwise).
    let (trained, result) = nofis.run_or_resume(&oracle, &mut rng)?;
    let nofis_calls = oracle.calls();

    println!("NOFIS");
    println!("  levels            : {:?}", trained.levels());
    println!("  estimate          : {:.3e}", result.estimate);
    println!("  golden            : {:.3e}", Leaf::GOLDEN_PR);
    println!(
        "  log error         : {:.3}",
        log_error(result.estimate, Leaf::GOLDEN_PR)
    );
    println!("  simulator calls   : {nofis_calls}");
    println!(
        "  IS hits / ESS     : {} / {:.1}",
        result.hits, result.effective_sample_size
    );

    // 4. Monte Carlo with the same budget usually sees zero failures.
    oracle.reset();
    let mc = monte_carlo(&oracle, 0.0, nofis_calls as usize, &mut rng);
    println!("\nMonte Carlo at the same budget");
    println!("  estimate          : {:.3e}", mc.estimate());
    println!(
        "  log error         : {:.3}",
        log_error(mc.estimate(), Leaf::GOLDEN_PR)
    );
    println!("  failing samples   : {}", mc.hits);

    Ok(())
}
