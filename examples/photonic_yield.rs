//! Photonic Y-branch yield analysis with importance-weight diagnostics.
//!
//! ```text
//! cargo run --release --example photonic_yield
//! ```
//!
//! Runs the Crank–Nicolson BPM on the Y-branch splitter, shows the output
//! field under nominal and deformed sidewalls, then estimates the
//! low-transmission failure probability with NOFIS and inspects the
//! realized importance weights — demonstrating how
//! [`WeightDiagnostics`](nofis_prob::WeightDiagnostics) flags an
//! under-covering proposal instead of silently trusting the estimate.

use nofis_core::{Levels, Nofis, NofisConfig};
use nofis_photonics::{BpmConfig, BpmSolver, YBranch};
use nofis_prob::{CountingOracle, LimitState};
use nofis_testcases::YBranchCase;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sparkline(values: &[f64]) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let max = values.iter().copied().fold(1e-12, f64::max);
    values
        .iter()
        .map(|v| {
            let t = (v / max).clamp(0.0, 1.0);
            RAMP[(t * (RAMP.len() - 1) as f64).round() as usize] as char
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Physics sanity: output field with and without deformation.
    let solver = BpmSolver::new(YBranch::new(26), BpmConfig::default());
    let nominal = solver.run(&vec![0.0; 26])?;
    let deformed = solver.run(&vec![1.5; 26])?;
    println!(
        "nominal  T = {:.3}  |{}|",
        nominal.transmission,
        sparkline(&nominal.output_magnitude)
    );
    println!(
        "deformed T = {:.3}  |{}|",
        deformed.transmission,
        sparkline(&deformed.output_magnitude)
    );

    // 2. Yield estimation on the registered test case (coarser grid).
    let case = YBranchCase::default();
    println!(
        "\nfailure spec: transmission below {:.1}% (nominal margin g = {:.1} points)",
        case.spec() * 100.0,
        case.value(&vec![0.0; 26])
    );

    let oracle = CountingOracle::new(&case);
    let config = NofisConfig {
        levels: Levels::Fixed(vec![18.5, 10.9, 7.5, 4.1, 0.0]),
        layers_per_stage: 8,
        hidden: 28,
        epochs: 12,
        batch_size: 250,
        n_is: 400,
        tau: 1.0,
        minibatch: 4096,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(3);
    let trained = Nofis::new(config)?.train(&oracle, &mut rng)?;
    let (result, diagnostics) = trained.estimate_with_diagnostics(&oracle, 400, &mut rng)?;

    println!(
        "\nNOFIS estimate : {:.3e}  ({} calls)",
        result.estimate,
        oracle.calls()
    );
    println!(
        "IS hits / ESS  : {} / {:.1}",
        result.hits, result.effective_sample_size
    );
    match diagnostics {
        Some(d) => {
            println!(
                "weight health  : max share {:.2}, tail index {:?}, healthy = {}",
                d.max_weight_share,
                d.hill_tail_index,
                d.looks_healthy()
            );
            if !d.looks_healthy() {
                println!("  → the proposal under-covers the failure region; treat the estimate as a lower bound and cross-check with SUS");
            }
        }
        None => println!("weight health  : no failure-region samples — estimate is 0"),
    }
    Ok(())
}
