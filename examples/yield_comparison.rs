//! Compare all seven estimators (the paper's Table 1 columns) on one
//! circuit test case.
//!
//! ```text
//! cargo run --release --example yield_comparison [-- <case-name>]
//! ```
//!
//! Defaults to the Opamp case; pass e.g. `rosen`, `oscillator`, or
//! `charge` to pick another registered case.

use nofis_baselines::{
    AdaptIsEstimator, McEstimator, RareEventEstimator, SirEstimator, SssEstimator, SucEstimator,
    SusEstimator,
};
use nofis_bench::NofisEstimator;
use nofis_core::{Levels, NofisConfig};
use nofis_prob::{log_error, CountingOracle};
use nofis_testcases::registry::all_cases;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let wanted = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "opamp".to_string())
        .to_lowercase();
    let entry = all_cases()
        .into_iter()
        .find(|c| c.name.to_lowercase().contains(&wanted))
        .expect("unknown case name");
    println!(
        "case #{} {} (D = {}, golden Pr = {:.2e})\n",
        entry.id, entry.name, entry.dim, entry.golden_pr
    );

    let nofis_config = NofisConfig {
        levels: Levels::AdaptiveQuantile {
            max_stages: 5,
            p0: 0.12,
            pilot: 150,
        },
        layers_per_stage: 8,
        hidden: 24,
        epochs: 15,
        batch_size: 300,
        n_is: 500,
        ..Default::default()
    };

    let estimators: Vec<Box<dyn RareEventEstimator>> = vec![
        Box::new(McEstimator::new(50_000)),
        Box::new(SirEstimator::new(20_000, 1_000_000)),
        Box::new(SucEstimator::new(5_000, 0.1, 7)),
        Box::new(SusEstimator::new(6_000, 0.1, 7)),
        Box::new(SssEstimator::new(30_000)),
        Box::new(AdaptIsEstimator::new(5_000, 5, 5_000)),
        Box::new(NofisEstimator::new(nofis_config)),
    ];

    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "method", "estimate", "calls", "log error"
    );
    for est in estimators {
        let ls = (entry.make)();
        let oracle = CountingOracle::new(&ls);
        let mut rng = StdRng::seed_from_u64(17);
        let t0 = std::time::Instant::now();
        let p = est.estimate(&oracle, &mut rng);
        println!(
            "{:<10} {:>12.3e} {:>12} {:>10.3}   ({:.1?})",
            est.method_name(),
            p,
            oracle.calls(),
            log_error(p, entry.golden_pr),
            t0.elapsed()
        );
    }
}
