//! Facade crate for the NOFIS reproduction workspace.
//!
//! Re-exports every sub-crate under one roof so downstream users can
//! depend on a single crate:
//!
//! ```
//! use nofis::core::{Levels, Nofis, NofisConfig};
//! use nofis::prob::LimitState;
//!
//! struct Sphere;
//! impl LimitState for Sphere {
//!     fn dim(&self) -> usize { 2 }
//!     fn value(&self, x: &[f64]) -> f64 {
//!         x[0] * x[0] + x[1] * x[1] - 25.0 // fails outside radius 5
//!     }
//! }
//!
//! let config = NofisConfig::default();
//! assert!(config.validate().is_ok());
//! ```
//!
//! See the [README](https://example.invalid/nofis) and DESIGN.md for the
//! architecture; `nofis::core` holds the algorithm itself.

#![deny(missing_docs)]

pub use nofis_autograd as autograd;
pub use nofis_baselines as baselines;
pub use nofis_circuit as circuit;
pub use nofis_core as core;
pub use nofis_faults as faults;
pub use nofis_flows as flows;
pub use nofis_jobs as jobs;
pub use nofis_linalg as linalg;
pub use nofis_nn as nn;
pub use nofis_parallel as parallel;
pub use nofis_photonics as photonics;
pub use nofis_prob as prob;
pub use nofis_telemetry as telemetry;
pub use nofis_testcases as testcases;
