//! Deterministic fault-injection matrix (DESIGN.md §11).
//!
//! Every scenario installs a seeded [`nofis::faults::FaultPlan`], runs the
//! full pipeline, and asserts the contract the chaos harness exists to
//! enforce: the pipeline finishes with `Ok` or a *typed* [`NofisError`] —
//! it never panics and never exceeds its simulator-call budget — no matter
//! which seam misbehaves.
//!
//! The plan is process-global, so every scenario runs sequentially inside
//! ONE `#[test]` in its own test binary (cargo gives each integration-test
//! file its own process; in-file tests would race on the installed plan).
//! The `kill` fault kind exits the whole process and is exercised by the CI
//! chaos job instead.

use nofis::core::checkpoint::CheckpointConfig;
use nofis::core::{Levels, Nofis, NofisConfig, NofisError};
use nofis::faults::{self, FaultPlan, Site};
use nofis::prob::{CountingOracle, IsResult, LimitState};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

struct HalfSpace {
    beta: f64,
}
impl LimitState for HalfSpace {
    fn dim(&self) -> usize {
        2
    }
    fn value(&self, x: &[f64]) -> f64 {
        self.beta - x[0]
    }
    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        (self.beta - x[0], vec![-1.0, 0.0])
    }
    fn name(&self) -> &str {
        "halfspace"
    }
}

fn matrix_config() -> NofisConfig {
    NofisConfig {
        levels: Levels::Fixed(vec![1.0, 0.0]),
        layers_per_stage: 2,
        hidden: 8,
        epochs: 3,
        batch_size: 30,
        minibatch: 10,
        n_is: 150,
        tau: 10.0,
        learning_rate: 5e-3,
        ..Default::default()
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nofis-faultmx-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the pipeline under `plan` and returns the outcome plus the real
/// simulator calls made. Panics (the thing the matrix forbids) propagate
/// and fail the test with the scenario name attached by the caller.
fn run_under(
    plan: &str,
    cfg: NofisConfig,
    seed: u64,
) -> (Result<IsResult, NofisError>, u64, std::sync::Arc<FaultPlan>) {
    let installed = faults::install(FaultPlan::parse(plan).expect("plan grammar"));
    let ls = HalfSpace { beta: 2.0 };
    let oracle = CountingOracle::new(&ls);
    let nofis = Nofis::new(cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let outcome = nofis.run(&oracle, &mut rng).map(|(_, r)| r);
    faults::clear();
    (outcome, oracle.calls(), installed)
}

/// `Ok` or typed error — and if an error, one the pipeline is documented to
/// return under injected faults.
fn assert_graceful(scenario: &str, outcome: &Result<IsResult, NofisError>) {
    match outcome {
        Ok(result) => {
            assert!(
                result.estimate.is_finite(),
                "{scenario}: Ok result with non-finite estimate"
            );
        }
        Err(
            NofisError::TrainingDiverged { .. }
            | NofisError::BudgetExhausted { .. }
            | NofisError::DegenerateProposal { .. },
        ) => {}
        Err(other) => panic!("{scenario}: unexpected error class: {other:?}"),
    }
}

#[test]
fn fault_matrix_never_panics_never_overruns() {
    // --- Oracle value corruption: NaN and Inf bursts mid-training. The
    // PR 1 divergence rollback (or the estimation ladder) must absorb them.
    for (scenario, plan) in [
        ("oracle_nan burst", "oracle_nan@5x20"),
        ("oracle_inf burst", "oracle_inf@40x10"),
        ("oracle_nan in estimation", "oracle_nan@200x30"),
    ] {
        let (outcome, _, installed) = run_under(plan, matrix_config(), 42);
        assert!(
            installed.visits(Site::OracleCall) > 0,
            "{scenario}: fault never reached the oracle seam"
        );
        assert_graceful(scenario, &outcome);
    }

    // --- Oracle panics: the budgeted wrapper contains the panic and
    // degrades it to a NaN evaluation, so the NaN machinery takes over.
    let (outcome, _, _) = run_under("oracle_panic@7x3", matrix_config(), 42);
    assert_graceful("oracle_panic", &outcome);

    // --- Budget forced to exhaustion at the very first planning call:
    // nothing is affordable, so the run must surface a typed budget error
    // (or truncate into a degraded Ok) without a single overrun call.
    let mut cfg = matrix_config();
    cfg.max_calls = Some(10_000);
    let (outcome, calls, _) = run_under("budget_exhaust@0", cfg, 42);
    match &outcome {
        Err(NofisError::BudgetExhausted { used, budget, .. }) => {
            assert!(used <= budget, "budget overrun reported: {used} > {budget}");
        }
        other => assert_graceful("budget_exhaust@0", other),
    }
    assert!(calls <= 10_000, "budget overrun: {calls} real calls");

    // --- Budget exhaustion mid-run: training truncates gracefully or the
    // estimate descends the ladder; never an overrun.
    let mut cfg = matrix_config();
    cfg.max_calls = Some(10_000);
    let (outcome, calls, _) = run_under("budget_exhaust@30", cfg, 42);
    match &outcome {
        Err(NofisError::BudgetExhausted { used, budget, .. }) => {
            assert!(used <= budget, "budget overrun reported: {used} > {budget}");
        }
        other => assert_graceful("budget_exhaust@30", other),
    }
    assert!(calls <= 10_000, "budget overrun: {calls} real calls");

    // --- Worker-thread panic inside the parallel pool. The seam only
    // exists on helper lanes, so it needs a minibatch wide enough to split
    // into multiple row chunks AND more than one pool thread; when the
    // environment gives us helpers, the panic must cross the re-raise path
    // and be contained as a divergent minibatch (rollback or typed error),
    // not a test-process abort.
    let mut cfg = matrix_config();
    cfg.batch_size = 48;
    cfg.minibatch = 48;
    let (outcome, _, installed) = run_under("worker_panic@0x4", cfg, 42);
    if installed.visits(Site::WorkerChunk) > 0 {
        assert_graceful("worker_panic", &outcome);
    } else {
        // Single-threaded pool: the seam never fires and the run is clean.
        assert_graceful("worker_panic (no helpers)", &outcome);
        assert!(outcome.is_ok(), "unfaulted run failed");
    }

    // --- Worker-thread panic during *estimation*: train cleanly first,
    // then poison every pooled batch evaluation. The ladder must treat the
    // panicked rungs as unhealthy and descend, or surface a typed error
    // when every rung is lost — never an unwinding test process.
    let ls = HalfSpace { beta: 2.0 };
    let nofis = Nofis::new(matrix_config()).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let trained = nofis.train(&ls, &mut rng).unwrap();
    let installed = faults::install(FaultPlan::parse("worker_panic@0x100000").unwrap());
    let outcome = trained.estimate(&ls, 150, &mut rng);
    faults::clear();
    if installed.visits(Site::WorkerChunk) > 0 {
        match &outcome {
            Ok(_) | Err(NofisError::DegenerateProposal { .. }) => {}
            other => panic!("estimation under worker panics: {other:?}"),
        }
    } else {
        assert!(outcome.is_ok(), "unfaulted estimate failed");
    }

    // --- Checkpoint writes failing: durability is observability, so a
    // write-fault burst is swallowed (with telemetry) and the run is
    // bitwise identical to the unfaulted one.
    let dir = fresh_dir("ckpt-fail");
    let mut cfg = matrix_config();
    cfg.checkpoint = Some(CheckpointConfig {
        dir: dir.clone(),
        every_steps: 1,
        keep: 1000,
        namespace: None,
    });
    let (faulted, _, installed) = run_under("ckpt_fail@0x5", cfg.clone(), 42);
    assert!(
        installed.visits(Site::CkptWrite) >= 5,
        "ckpt_fail burst never reached the writer"
    );
    let clean_dir = fresh_dir("ckpt-clean");
    cfg.checkpoint.as_mut().unwrap().dir = clean_dir.clone();
    let nofis = Nofis::new(cfg).unwrap();
    let ls = HalfSpace { beta: 2.0 };
    let mut rng = StdRng::seed_from_u64(42);
    let (_, clean) = nofis.run(&ls, &mut rng).unwrap();
    let faulted = faulted.expect("ckpt_fail must not fail the run");
    assert_eq!(faulted.estimate.to_bits(), clean.estimate.to_bits());
    assert_eq!(faulted.hits, clean.hits);
    assert_eq!(
        faulted.effective_sample_size.to_bits(),
        clean.effective_sample_size.to_bits()
    );
    // The failed generations are simply missing; later writes succeeded.
    let survivors = nofis::core::checkpoint::list_generations(&dir).unwrap();
    let clean_count = nofis::core::checkpoint::list_generations(&clean_dir)
        .unwrap()
        .len();
    assert_eq!(survivors.len(), clean_count - 5);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&clean_dir);
}
