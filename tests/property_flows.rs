//! Property-based tests on the core numerical invariants (proptest).

use nofis_autograd::ParamStore;
use nofis_flows::RealNvp;
use nofis_prob::{log_error, normal_cdf, normal_quantile, quantile, RunningStats};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn randomized_flow(dim: usize, layers: usize, seed: u64) -> (ParamStore, RealNvp) {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let flow = RealNvp::new(&mut store, dim, layers, 8, 2.0, &mut rng);
    let ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
    let mut prng = StdRng::seed_from_u64(seed ^ 0xabcd);
    for id in ids {
        for v in store.get_mut(id).as_mut_slice() {
            *v += prng.gen_range(-0.5..0.5);
        }
    }
    (store, flow)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flow invertibility: inverse(transform(x)) == x and the log-dets
    /// cancel, for random parameters and random points.
    #[test]
    fn flow_round_trip(
        seed in 0u64..1_000,
        x0 in -3.0f64..3.0,
        x1 in -3.0f64..3.0,
        x2 in -3.0f64..3.0,
    ) {
        let (store, flow) = randomized_flow(3, 4, seed);
        let x = [x0, x1, x2];
        let (y, ld) = flow.transform(&store, &x, 4);
        let (back, ld_inv) = flow.inverse(&store, &y, 4);
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-8, "round trip {x:?} -> {back:?}");
        }
        prop_assert!((ld + ld_inv).abs() < 1e-8);
    }

    /// Sampling and density evaluation agree: ln q from the sampling path
    /// equals the ln q recomputed by inversion.
    #[test]
    fn flow_density_consistency(seed in 0u64..500) {
        let (store, flow) = randomized_flow(2, 6, seed);
        let mut rng = StdRng::seed_from_u64(seed + 10_000);
        let (x, log_q) = flow.sample(&store, 6, &mut rng);
        let direct = flow.log_density(&store, &x, 6);
        prop_assert!((log_q - direct).abs() < 1e-8, "{log_q} vs {direct}");
    }

    /// Φ and Φ⁻¹ are inverse over a wide probability range.
    #[test]
    fn normal_quantile_round_trip(p in 1e-10f64..0.9999) {
        let x = normal_quantile(p);
        prop_assert!((normal_cdf(x) - p).abs() < 1e-9 * (1.0 + p / (1.0 - p)));
    }

    /// Φ is monotone.
    #[test]
    fn normal_cdf_monotone(a in -8.0f64..8.0, b in -8.0f64..8.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-15);
    }

    /// The empirical quantile lies within the sample range and is monotone
    /// in its level.
    #[test]
    fn quantile_bounds_and_monotonicity(
        mut values in prop::collection::vec(-100.0f64..100.0, 2..50),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = values[0];
        let hi = values[values.len() - 1];
        let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let va = quantile(&values, qa);
        let vb = quantile(&values, qb);
        prop_assert!(va >= lo - 1e-12 && vb <= hi + 1e-12);
        prop_assert!(va <= vb + 1e-12);
    }

    /// Welford statistics match the naive two-pass computation.
    #[test]
    fn running_stats_match_naive(values in prop::collection::vec(-1e3f64..1e3, 2..40)) {
        let stats: RunningStats = values.iter().copied().collect();
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((stats.mean() - mean).abs() < 1e-9 * (1.0 + mean.abs()));
        prop_assert!((stats.sample_variance() - var).abs() < 1e-7 * (1.0 + var));
    }

    /// log_error is symmetric under swapping over/under-estimation ratios
    /// and zero iff the estimate equals the golden value.
    #[test]
    fn log_error_properties(golden in 1e-9f64..1e-3, ratio in 0.01f64..100.0) {
        prop_assert!(log_error(golden, golden) < 1e-12);
        let over = log_error(golden * ratio, golden);
        let under = log_error(golden / ratio, golden);
        // Symmetric as long as neither hits the floor.
        if golden / ratio > 1e-12 {
            prop_assert!((over - under).abs() < 1e-9);
        }
    }
}
