//! Allocation-regression lockdown for the pooled training tape: after a
//! short warmup, a representative RealNVP training step must be served
//! entirely from recycled buffers — the pool's miss counter (its
//! allocations-per-step meter) must stop moving.

use nofis::autograd::{Graph, ParamStore};
use nofis::flows::RealNvp;
use nofis::nn::Adam;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic batch filler (no per-step RNG allocation).
fn lcg_fill(buf: &mut [f64], seed: u64) {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    for v in buf.iter_mut() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
    }
}

#[test]
fn steady_state_training_step_has_zero_pool_misses() {
    // A representative NOFIS stage-3 step: dim 4, 6 coupling layers with
    // the first 4 frozen, batch 32, tempered-loss shape, fused Adam update.
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(7);
    let flow = RealNvp::new(&mut store, 4, 6, 8, 2.0, &mut rng);
    let ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
    for id in ids {
        for v in store.get_mut(id).as_mut_slice() {
            *v += rng.gen_range(-0.2..0.2);
        }
    }
    for id in flow.param_ids_for_layers(0..4) {
        store.set_frozen(id, true);
    }

    let mut g = Graph::new();
    g.set_pruning(true);
    let mut opt = Adam::new(1e-3).with_max_grad_norm(Some(100.0));

    let mut step = |g: &mut Graph, store: &mut ParamStore, seed: u64| {
        g.reset();
        let x = g.constant_with(32, 4, |buf| lcg_fill(buf, seed));
        let (z, logdet) = flow.forward_graph(store, g, x, 6);
        // The oracle term of the real loop: a black-box rowwise function
        // with externally supplied gradients.
        let gvals = g.external_rowwise(z, |row| (1.0 - row[0], vec![-1.0, 0.0, 0.0, 0.0]));
        let tempered = g.min_scalar(gvals, 0.0);
        let sq = g.square(z);
        let ssq = g.sum_cols(sq);
        let half = g.scale(ssq, -0.5);
        let a = g.add(logdet, tempered);
        let per_sample = g.add(a, half);
        let mean = g.mean_all(per_sample);
        let loss = g.neg(mean);
        g.backward(loss);
        opt.step_fused(store, g);
        g.value(loss).item()
    };

    // Warmup: the first step allocates every live slot, the second covers
    // buffers whose lifetime straddles a step boundary (e.g. grads freed
    // into different size classes).
    for s in 0..2 {
        let loss = step(&mut g, &mut store, s);
        assert!(loss.is_finite());
    }
    let warm = g.pool_stats();
    assert!(warm.misses > 0, "warmup must have allocated something");

    for s in 2..8 {
        let loss = step(&mut g, &mut store, s);
        assert!(loss.is_finite());
    }
    let steady = g.pool_stats();
    assert_eq!(
        steady.misses,
        warm.misses,
        "steady-state training steps must perform zero pool allocations \
         ({} new misses over 6 steps)",
        steady.misses - warm.misses
    );
    // And the steps were actually served by the pool, not bypassing it.
    assert!(steady.hits > warm.hits);
}
