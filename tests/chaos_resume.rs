//! Crash-recovery lockdown for the durable checkpoint layer (DESIGN.md §11).
//!
//! The contract under test: a run killed at *any* checkpoint generation —
//! every stage boundary and every mid-stage optimizer step — and resumed
//! via [`Nofis::run_or_resume`] produces a final `IsResult` and trained
//! parameters **bitwise identical** to the uninterrupted run, at any thread
//! count; torn or truncated checkpoint files never panic the loader and
//! cost at most one checkpoint interval; and checkpointing itself is pure
//! observability (results with it on and off are bitwise equal).
//!
//! The kill is simulated by copying a prefix of the golden run's
//! checkpoint generations into a fresh directory and resuming from it —
//! exactly the on-disk state a `kill -9` after that generation's rename
//! would leave (the CI chaos job performs a real process kill on top).

use nofis::core::checkpoint::{self, CheckpointConfig};
use nofis::core::{Levels, Nofis, NofisConfig, NofisError, TrainedNofis};
use nofis::prob::{CountingOracle, IsResult, LimitState};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};

/// g(x) = beta - x0 in 2-D: an analytic half-space with a known tail.
struct HalfSpace {
    beta: f64,
}
impl LimitState for HalfSpace {
    fn dim(&self) -> usize {
        2
    }
    fn value(&self, x: &[f64]) -> f64 {
        self.beta - x[0]
    }
    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        (self.beta - x[0], vec![-1.0, 0.0])
    }
    fn name(&self) -> &str {
        "halfspace"
    }
}

/// Two stages x 3 epochs x 3 minibatches = 18 optimizer steps; with
/// `every_steps = 1` that is 18 mid-stage generations plus 2 stage
/// boundaries — every possible resume point of the run.
fn chaos_config(ckpt: Option<CheckpointConfig>) -> NofisConfig {
    NofisConfig {
        levels: Levels::Fixed(vec![1.0, 0.0]),
        layers_per_stage: 2,
        hidden: 8,
        epochs: 3,
        batch_size: 30,
        minibatch: 10,
        n_is: 150,
        tau: 10.0,
        learning_rate: 5e-3,
        checkpoint: ckpt,
        ..Default::default()
    }
}

fn keep_all(dir: &Path) -> CheckpointConfig {
    CheckpointConfig {
        dir: dir.to_path_buf(),
        every_steps: 1,
        keep: 1000,
        namespace: None,
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nofis-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Everything the determinism contract promises, reduced to raw bits.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    estimate: u64,
    ess: u64,
    hits: u64,
    rung: String,
    levels: Vec<u64>,
    params: Vec<u64>,
}

fn outcome(trained: &TrainedNofis, result: &IsResult) -> Outcome {
    let (_, store) = trained.flow();
    Outcome {
        estimate: result.estimate.to_bits(),
        ess: result.effective_sample_size.to_bits(),
        hits: result.hits,
        rung: format!("{:?}", result.rung),
        levels: trained.levels().iter().map(|l| l.to_bits()).collect(),
        params: store
            .iter()
            .flat_map(|(_, t)| t.as_slice().iter().map(|v| v.to_bits()))
            .collect(),
    }
}

/// Runs the golden (uninterrupted) chaos run, optionally checkpointing.
fn golden(ckpt: Option<CheckpointConfig>, ls: &HalfSpace) -> (Outcome, u64) {
    let oracle = CountingOracle::new(ls);
    let nofis = Nofis::new(chaos_config(ckpt)).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let (trained, result) = nofis.run(&oracle, &mut rng).unwrap();
    (outcome(&trained, &result), oracle.calls())
}

/// Copies generations `<= upto` from the golden directory — the disk state
/// a kill right after generation `upto` leaves behind.
fn copy_prefix(src: &Path, dst: &Path, upto: u64) {
    std::fs::create_dir_all(dst).unwrap();
    for (generation, path) in checkpoint::list_generations(src).unwrap() {
        if generation <= upto {
            std::fs::copy(&path, dst.join(path.file_name().unwrap())).unwrap();
        }
    }
}

#[test]
fn kill_and_resume_is_bitwise_identical_at_every_generation() {
    let ls = HalfSpace { beta: 2.0 };
    let golden_dir = fresh_dir("golden");
    let (golden_outcome, golden_calls) = golden(Some(keep_all(&golden_dir)), &ls);

    let generations = checkpoint::list_generations(&golden_dir).unwrap();
    // 18 mid-stage steps + 2 stage boundaries.
    assert_eq!(generations.len(), 20, "unexpected checkpoint cadence");

    let resume_dir = fresh_dir("resume");
    for (generation, _) in &generations {
        let _ = std::fs::remove_dir_all(&resume_dir);
        copy_prefix(&golden_dir, &resume_dir, *generation);
        let (_, ckpt) = checkpoint::load_latest(&resume_dir).unwrap().unwrap();

        let oracle = CountingOracle::new(&ls);
        let nofis = Nofis::new(chaos_config(Some(keep_all(&resume_dir)))).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let (trained, result) = nofis.run_or_resume(&oracle, &mut rng).unwrap();

        assert_eq!(
            outcome(&trained, &result),
            golden_outcome,
            "resume from generation {generation} diverged from the golden run"
        );
        // Budget accounting spans the crash: the resumed run pays only for
        // the work after the checkpoint, and restored + fresh covers the
        // golden total exactly.
        assert_eq!(
            ckpt.oracle_spent + oracle.calls(),
            golden_calls,
            "simulator-call accounting broke across the generation {generation} crash boundary"
        );
    }
    let _ = std::fs::remove_dir_all(&golden_dir);
    let _ = std::fs::remove_dir_all(&resume_dir);
}

#[test]
fn checkpointing_is_pure_observability() {
    let ls = HalfSpace { beta: 2.0 };
    let dir = fresh_dir("on-off");
    let (with_ckpt, calls_with) = golden(Some(keep_all(&dir)), &ls);
    let (without, calls_without) = golden(None, &ls);
    assert_eq!(with_ckpt, without, "checkpointing changed the results");
    assert_eq!(calls_with, calls_without);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_or_resume_without_history_is_a_plain_run() {
    let ls = HalfSpace { beta: 2.0 };
    let (plain, _) = golden(None, &ls);

    // Empty directory: trains from scratch, then leaves checkpoints behind.
    let dir = fresh_dir("scratch");
    let nofis = Nofis::new(chaos_config(Some(keep_all(&dir)))).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let (trained, result) = nofis.run_or_resume(&ls, &mut rng).unwrap();
    assert_eq!(outcome(&trained, &result), plain);
    assert!(!checkpoint::list_generations(&dir).unwrap().is_empty());

    // No checkpoint config at all: also a plain run.
    let nofis = Nofis::new(chaos_config(None)).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let (trained, result) = nofis.run_or_resume(&ls, &mut rng).unwrap();
    assert_eq!(outcome(&trained, &result), plain);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_newest_checkpoint_falls_back_one_generation_never_panics() {
    let ls = HalfSpace { beta: 2.0 };
    let golden_dir = fresh_dir("torn-golden");
    let (golden_outcome, _) = golden(Some(keep_all(&golden_dir)), &ls);

    // Build a directory holding generations 7 and 8, then tear generation 8
    // at every byte offset: the loader must fall back to generation 7 every
    // time, without panicking.
    let torn_dir = fresh_dir("torn");
    copy_prefix(&golden_dir, &torn_dir, 8);
    for (generation, path) in checkpoint::list_generations(&torn_dir).unwrap() {
        if generation < 7 {
            std::fs::remove_file(path).unwrap();
        }
    }
    let newest = checkpoint::list_generations(&torn_dir).unwrap();
    let (gen8, gen8_path) = newest.last().cloned().unwrap();
    assert_eq!(gen8, 8);
    let intact = std::fs::read(&gen8_path).unwrap();

    for cut in 0..intact.len() {
        std::fs::write(&gen8_path, &intact[..cut]).unwrap();
        let (generation, _) = checkpoint::load_latest(&torn_dir)
            .unwrap()
            .unwrap_or_else(|| panic!("no loadable checkpoint after tearing at {cut}"));
        assert_eq!(
            generation, 7,
            "tear at byte {cut} lost more than one generation"
        );
    }

    // A resumed run from the torn directory (plus a stale tmp from the
    // "crashed writer") still reproduces the golden bitwise.
    std::fs::write(&gen8_path, &intact[..intact.len() / 2]).unwrap();
    std::fs::write(torn_dir.join("ckpt-0000000099.tmp"), b"half-written").unwrap();
    let nofis = Nofis::new(chaos_config(Some(keep_all(&torn_dir)))).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let (trained, result) = nofis.run_or_resume(&ls, &mut rng).unwrap();
    assert_eq!(outcome(&trained, &result), golden_outcome);
    assert!(!torn_dir.join("ckpt-0000000099.tmp").exists());

    let _ = std::fs::remove_dir_all(&golden_dir);
    let _ = std::fs::remove_dir_all(&torn_dir);
}

#[test]
fn mismatched_config_is_a_typed_checkpoint_error() {
    let ls = HalfSpace { beta: 2.0 };
    let dir = fresh_dir("mismatch");
    let _ = golden(Some(keep_all(&dir)), &ls);

    // Same directory, different run-shaping hyper-parameter.
    let mut cfg = chaos_config(Some(keep_all(&dir)));
    cfg.hidden = 16;
    let nofis = Nofis::new(cfg).unwrap();
    let oracle = CountingOracle::new(&ls);
    let mut rng = StdRng::seed_from_u64(42);
    let err = nofis.resume_within(
        &nofis::prob::BudgetedOracle::new(&oracle, u64::MAX),
        &mut rng,
    );
    match err {
        Err(NofisError::Checkpoint { message }) => {
            assert!(message.contains("configuration"), "{message}");
        }
        other => panic!("expected a typed Checkpoint error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rotation_bounds_disk_usage() {
    let ls = HalfSpace { beta: 2.0 };
    let dir = fresh_dir("rotate");
    let cfg = chaos_config(Some(CheckpointConfig {
        dir: dir.clone(),
        every_steps: 1,
        keep: 3,
        namespace: None,
    }));
    let nofis = Nofis::new(cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    nofis.run(&ls, &mut rng).unwrap();
    let gens = checkpoint::list_generations(&dir).unwrap();
    assert_eq!(gens.len(), 3, "rotation kept {} generations", gens.len());
    // The survivors are the newest three, and the newest is the done-marker.
    assert_eq!(
        gens.iter().map(|(g, _)| *g).collect::<Vec<_>>(),
        vec![18, 19, 20]
    );
    let (_, newest) = checkpoint::load_latest(&dir).unwrap().unwrap();
    assert!(newest.done);
    let _ = std::fs::remove_dir_all(&dir);
}
