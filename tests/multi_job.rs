//! Multi-job runtime integration (DESIGN.md §12): the per-job determinism
//! contract under co-tenancy, the chaos matrix for the supervised runtime
//! (injected job panics, deadline expiries, queue overflow — every
//! submitted job must reach a terminal typed state, co-tenants must be
//! unaffected bitwise), and checkpoint namespacing across jobs that share
//! one parent directory.
//!
//! Fault plans and telemetry sinks are process-global, so every test takes
//! the `GLOBAL` lock (cargo runs in-file tests on parallel threads).

use nofis::core::checkpoint::CheckpointConfig;
use nofis::core::{Levels, Nofis, NofisConfig};
use nofis::faults::{self, FaultPlan};
use nofis::jobs::{JobError, JobRunner, JobSpec, RetryPolicy, RunnerConfig, ShutdownMode};
use nofis::prob::{IsResult, LimitState};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

static GLOBAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

struct HalfSpace {
    beta: f64,
}
impl LimitState for HalfSpace {
    fn dim(&self) -> usize {
        2
    }
    fn value(&self, x: &[f64]) -> f64 {
        self.beta - x[0]
    }
    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        (self.beta - x[0], vec![-1.0, 0.0])
    }
    fn name(&self) -> &str {
        "halfspace"
    }
}

fn tiny_config() -> NofisConfig {
    NofisConfig {
        levels: Levels::Fixed(vec![1.0, 0.0]),
        layers_per_stage: 2,
        hidden: 8,
        epochs: 3,
        batch_size: 30,
        minibatch: 10,
        n_is: 150,
        tau: 10.0,
        learning_rate: 5e-3,
        ..Default::default()
    }
}

/// Ground truth: the identical run with nothing else in the process.
/// Checkpointing and co-tenancy must not change a single bit vs this.
fn solo(cfg: &NofisConfig, beta: f64, seed: u64) -> IsResult {
    let mut cfg = cfg.clone();
    cfg.checkpoint = None;
    let nofis = Nofis::new(cfg).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    nofis.run(&HalfSpace { beta }, &mut rng).unwrap().1
}

fn assert_bitwise(label: &str, got: &IsResult, want: &IsResult) {
    assert_eq!(
        got.estimate.to_bits(),
        want.estimate.to_bits(),
        "{label}: estimate differs ({} vs {})",
        got.estimate,
        want.estimate
    );
    assert_eq!(got.hits, want.hits, "{label}: hits differ");
    assert_eq!(
        got.effective_sample_size.to_bits(),
        want.effective_sample_size.to_bits(),
        "{label}: ESS differs"
    );
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nofis-multijob-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Satellite: per-job determinism under co-tenancy. Two different-seed
/// jobs running concurrently on the shared pool must each be
/// bitwise-identical to their solo runs — at whatever thread count the CI
/// matrix exports via `NOFIS_THREADS` (1 and 4).
#[test]
fn co_tenant_jobs_match_their_solo_runs_bitwise() {
    let _g = serial();
    let cfg = tiny_config();
    let solo_a = solo(&cfg, 2.0, 11);
    let solo_b = solo(&cfg, 2.5, 22);

    let runner = JobRunner::new(RunnerConfig {
        workers: 2,
        queue_capacity: 8,
    });
    let a = runner.submit(JobSpec::new(
        "tenant-a",
        cfg.clone(),
        Arc::new(HalfSpace { beta: 2.0 }),
        11,
    ));
    let b = runner.submit(JobSpec::new(
        "tenant-b",
        cfg,
        Arc::new(HalfSpace { beta: 2.5 }),
        22,
    ));
    let got_a = a.wait().expect("tenant-a should finish");
    let got_b = b.wait().expect("tenant-b should finish");
    runner.shutdown(ShutdownMode::Drain);

    assert_bitwise("tenant-a", &got_a, &solo_a);
    assert_bitwise("tenant-b", &got_b, &solo_b);
}

/// Regression (PR 7): consecutive jobs on ONE worker with *different
/// frozen-mask trajectories* must not leak `requires_grad` pruning state
/// (or, with the compiled engine, a stale `CompiledStep` pruning plan)
/// from one job into the next. A `freeze: true` job trains with earlier
/// stages frozen; a `freeze: false` job (the NoFreeze ablation) never
/// freezes anything — run back-to-back on the same worker, each must be
/// bitwise-identical to its solo run, in both submission orders and with
/// the compiled engine both on (default) and off.
#[test]
fn consecutive_jobs_with_different_frozen_masks_do_not_leak_pruning_state() {
    let _g = serial();
    for compile in [true, false] {
        let frozen_cfg = NofisConfig {
            compile_tape: compile,
            ..tiny_config()
        };
        let nofreeze_cfg = NofisConfig {
            freeze: false,
            compile_tape: compile,
            ..tiny_config()
        };
        let solo_frozen = solo(&frozen_cfg, 2.2, 31);
        let solo_nofreeze = solo(&nofreeze_cfg, 2.2, 31);

        for order in [0, 1] {
            let runner = JobRunner::new(RunnerConfig {
                workers: 1, // same worker reuses its Graph/tape across jobs
                queue_capacity: 4,
            });
            let specs = [
                JobSpec::new(
                    "frozen",
                    frozen_cfg.clone(),
                    Arc::new(HalfSpace { beta: 2.2 }),
                    31,
                ),
                JobSpec::new(
                    "nofreeze",
                    nofreeze_cfg.clone(),
                    Arc::new(HalfSpace { beta: 2.2 }),
                    31,
                ),
            ];
            let mut specs = Vec::from(specs);
            if order == 1 {
                specs.reverse();
            }
            let handles: Vec<_> = specs.into_iter().map(|s| runner.submit(s)).collect();
            let results: Vec<_> = handles
                .into_iter()
                .map(|h| h.wait().expect("job should finish"))
                .collect();
            runner.shutdown(ShutdownMode::Drain);
            let (got_frozen, got_nofreeze) = if order == 0 {
                (&results[0], &results[1])
            } else {
                (&results[1], &results[0])
            };
            assert_bitwise(
                &format!("frozen (compile={compile}, order={order})"),
                got_frozen,
                &solo_frozen,
            );
            assert_bitwise(
                &format!("nofreeze (compile={compile}, order={order})"),
                got_nofreeze,
                &solo_nofreeze,
            );
        }
    }
}

/// Acceptance criterion: with injected job panics, deadline expiries, and
/// queue overflow, every submitted job reaches a terminal typed state (no
/// hang), unaffected co-tenants are bitwise-identical to solo, and the
/// deadline-preempted job later resumes from its checkpoint and finishes
/// bitwise-identically to an uninterrupted run.
#[test]
fn chaos_matrix_every_job_terminal_and_cotenants_unaffected() {
    let _g = serial();
    let dir = fresh_dir("chaos");
    let cfg = tiny_config();
    let solo_deadline = solo(&cfg, 2.5, 55);
    let solo_survivor = solo(&cfg, 2.0, 77);

    // One worker makes the JobStart visit order the submission order:
    // visit 0 = "panics", visit 1 = "deadline", visit 2 = "survivor"
    // (the shed job never reaches JobStart).
    faults::install(FaultPlan::parse("queue_overflow@0;job_panic@0;deadline_storm@1").unwrap());
    let runner = JobRunner::new(RunnerConfig {
        workers: 1,
        queue_capacity: 8,
    });

    // JobSubmit visit 0: forced overflow on an empty queue — no victim to
    // evict, so the newcomer itself is shed.
    let shed = runner.submit(JobSpec::new(
        "shed",
        cfg.clone(),
        Arc::new(HalfSpace { beta: 2.0 }),
        1,
    ));
    let mut panic_spec = JobSpec::new("panics", cfg.clone(), Arc::new(HalfSpace { beta: 2.0 }), 2);
    panic_spec.retry = RetryPolicy::none();
    let panicked = runner.submit(panic_spec);
    let mut deadline_spec = JobSpec::new(
        "deadline",
        {
            let mut c = cfg.clone();
            c.checkpoint = Some(CheckpointConfig::new(&dir).with_namespace("dl"));
            c
        },
        Arc::new(HalfSpace { beta: 2.5 }),
        55,
    );
    deadline_spec.retry = RetryPolicy::none();
    let preempted = runner.submit(deadline_spec.clone());
    let survivor = runner.submit(JobSpec::new(
        "survivor",
        cfg,
        Arc::new(HalfSpace { beta: 2.0 }),
        77,
    ));

    assert_eq!(shed.wait(), Err(JobError::Shed { capacity: 8 }));
    match panicked.wait() {
        Err(JobError::Panicked { message }) => {
            assert!(message.contains("injected"), "unexpected panic: {message}")
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    assert_eq!(
        preempted.wait(),
        Err(JobError::DeadlineExceeded { checkpointed: true })
    );
    let got_survivor = survivor.wait().expect("survivor must be unaffected");
    runner.shutdown(ShutdownMode::Drain);
    faults::clear();
    assert_bitwise("survivor", &got_survivor, &solo_survivor);

    // Resubmitting the preempted spec (same config + seed + namespace)
    // resumes from the preemption checkpoint.
    let runner = JobRunner::new(RunnerConfig {
        workers: 1,
        queue_capacity: 8,
    });
    let resumed = runner
        .submit(deadline_spec)
        .wait()
        .expect("resumed job should finish");
    runner.shutdown(ShutdownMode::Drain);
    assert_bitwise("resumed-after-deadline", &resumed, &solo_deadline);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite regression: two jobs sharing one checkpoint parent directory
/// must not clobber (or silently resume) each other's generations. The
/// runner auto-namespaces by job id + seed; before namespacing, job B
/// (same config, different seed) would have adopted job A's checkpoints —
/// same config fingerprint — and reproduced A's results.
#[test]
fn jobs_sharing_a_checkpoint_dir_do_not_clobber_each_other() {
    let _g = serial();
    let dir = fresh_dir("shared-ckpt");
    let mut cfg = tiny_config();
    let mut ckpt = CheckpointConfig::new(&dir);
    ckpt.every_steps = 1; // checkpoint at every minibatch boundary
    cfg.checkpoint = Some(ckpt);

    let solo_a = solo(&cfg, 2.0, 11);
    let solo_b = solo(&cfg, 2.0, 22);

    let runner = JobRunner::new(RunnerConfig {
        workers: 1,
        queue_capacity: 8,
    });
    let a = runner.submit(JobSpec::new(
        "ckpt-a",
        cfg.clone(),
        Arc::new(HalfSpace { beta: 2.0 }),
        11,
    ));
    let got_a = a.wait().expect("job A should finish");
    let b = runner.submit(JobSpec::new(
        "ckpt-b",
        cfg,
        Arc::new(HalfSpace { beta: 2.0 }),
        22,
    ));
    let got_b = b.wait().expect("job B should finish");
    runner.shutdown(ShutdownMode::Drain);

    assert_bitwise("ckpt-a", &got_a, &solo_a);
    assert_bitwise("ckpt-b", &got_b, &solo_b);

    // Each job got its own `job-<id>-s<seed>` subdirectory with at least
    // one durable generation; nothing was written to the shared root.
    for ns in ["job-1-s11", "job-2-s22"] {
        let sub = dir.join(ns);
        let generations = std::fs::read_dir(&sub)
            .unwrap_or_else(|e| panic!("missing namespace dir {}: {e}", sub.display()))
            .filter_map(|entry| entry.ok())
            .filter(|entry| {
                entry
                    .file_name()
                    .to_str()
                    .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".nofis"))
            })
            .count();
        assert!(generations > 0, "no checkpoints under {}", sub.display());
    }
    let root_ckpts = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|entry| entry.ok())
        .filter(|entry| entry.file_type().map(|t| t.is_file()).unwrap_or(false))
        .count();
    assert_eq!(
        root_ckpts, 0,
        "checkpoint files leaked into the shared root"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
