//! Failure-injection tests: the library must degrade loudly and
//! predictably when fed pathological limit states or broken inputs.

use nofis_baselines::{
    AdaptIsEstimator, McEstimator, RareEventEstimator, SssEstimator, SusEstimator,
};
use nofis_core::{Levels, Nofis, NofisConfig, NofisError};
use nofis_prob::{CountingOracle, LimitState, WeightDiagnostics};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A limit state that always fails: P = 1.
struct AlwaysFails;
impl LimitState for AlwaysFails {
    fn dim(&self) -> usize {
        3
    }
    fn value(&self, _: &[f64]) -> f64 {
        -1.0
    }
    fn value_grad(&self, _: &[f64]) -> (f64, Vec<f64>) {
        (-1.0, vec![0.0; 3])
    }
}

/// A limit state that never fails: P = 0.
struct NeverFails;
impl LimitState for NeverFails {
    fn dim(&self) -> usize {
        3
    }
    fn value(&self, _: &[f64]) -> f64 {
        1.0
    }
    fn value_grad(&self, _: &[f64]) -> (f64, Vec<f64>) {
        (1.0, vec![0.0; 3])
    }
}

/// Discontinuous, non-smooth limit state (no useful gradients anywhere).
struct Staircase;
impl LimitState for Staircase {
    fn dim(&self) -> usize {
        2
    }
    fn value(&self, x: &[f64]) -> f64 {
        3.0 - x[0].floor()
    }
}

fn tiny_config() -> NofisConfig {
    NofisConfig {
        levels: Levels::AdaptiveQuantile {
            max_stages: 3,
            p0: 0.2,
            pilot: 50,
        },
        layers_per_stage: 2,
        hidden: 8,
        epochs: 4,
        batch_size: 40,
        n_is: 200,
        ..Default::default()
    }
}

#[test]
fn certain_event_estimates_one() {
    let nofis = Nofis::new(tiny_config()).expect("valid config");
    let mut rng = StdRng::seed_from_u64(0);
    let (_, result) = nofis
        .run(&AlwaysFails, &mut rng)
        .expect("certain event must run");
    assert!(
        (result.estimate - 1.0).abs() < 0.15,
        "p = {}",
        result.estimate
    );
}

#[test]
fn impossible_event_estimates_zero_without_panic() {
    let nofis = Nofis::new(tiny_config()).expect("valid config");
    let mut rng = StdRng::seed_from_u64(1);
    let (_, result) = nofis
        .run(&NeverFails, &mut rng)
        .expect("impossible event must run");
    assert_eq!(result.estimate, 0.0);
    assert_eq!(result.hits, 0);
}

#[test]
fn non_smooth_limit_state_survives_training() {
    // The default finite-difference gradient of a staircase is zero almost
    // everywhere; NOFIS must still produce a finite (if poor) estimate.
    let nofis = Nofis::new(tiny_config()).expect("valid config");
    let mut rng = StdRng::seed_from_u64(2);
    let (_, result) = nofis.run(&Staircase, &mut rng).expect("staircase must run");
    assert!(result.estimate.is_finite());
    assert!(result.estimate >= 0.0);
}

#[test]
fn baselines_handle_trivial_events() {
    let mut rng = StdRng::seed_from_u64(3);
    assert!((McEstimator::new(500).estimate(&AlwaysFails, &mut rng) - 1.0).abs() < 1e-12);
    assert_eq!(McEstimator::new(500).estimate(&NeverFails, &mut rng), 0.0);
    let sus = SusEstimator::new(200, 0.1, 3);
    assert!((sus.estimate(&AlwaysFails, &mut rng) - 1.0).abs() < 0.05);
    let sss = SssEstimator::new(600);
    let p = sss.estimate(&AlwaysFails, &mut rng);
    assert!(p > 0.3, "SSS on certain event: {p}");
    let ais = AdaptIsEstimator::new(100, 2, 200);
    assert!((ais.estimate(&AlwaysFails, &mut rng) - 1.0).abs() < 0.1);
}

#[test]
fn oracle_counts_are_exact_under_failure_paths() {
    // Even when an estimator bails out early (impossible event), every
    // consumed sample must be counted.
    let oracle = CountingOracle::new(&NeverFails);
    let mut rng = StdRng::seed_from_u64(4);
    let _ = McEstimator::new(1234).estimate(&oracle, &mut rng);
    assert_eq!(oracle.calls(), 1234);
}

#[test]
fn weight_diagnostics_flag_degenerate_is() {
    // Proposal far off target: one dominant weight among tiny ones.
    let mut lw = vec![-30.0; 40];
    lw[7] = 0.0;
    let d = WeightDiagnostics::from_log_weights(&lw);
    assert!(!d.looks_healthy());
    assert!(d.effective_sample_size < 2.0);
}

#[test]
fn nofis_rejects_one_dimensional_problems() {
    struct OneD;
    impl LimitState for OneD {
        fn dim(&self) -> usize {
            1
        }
        fn value(&self, x: &[f64]) -> f64 {
            3.0 - x[0]
        }
    }
    let nofis = Nofis::new(tiny_config()).expect("valid config");
    let mut rng = StdRng::seed_from_u64(5);
    let err = nofis.train(&OneD, &mut rng).unwrap_err();
    assert!(matches!(err, NofisError::InvalidInput { .. }), "{err}");
    assert!(format!("{err}").contains("dim"), "{err}");
}

/// A half-space event whose simulator returns NaN over a subregion (a
/// "broken corner" of the model): the poisoned samples must be sanitized
/// during training and never surface in the estimate.
struct NanSubregion;
impl LimitState for NanSubregion {
    fn dim(&self) -> usize {
        2
    }
    fn value(&self, x: &[f64]) -> f64 {
        if x[1].abs() < 0.3 {
            f64::NAN
        } else {
            2.5 - x[0]
        }
    }
    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        if x[1].abs() < 0.3 {
            (f64::NAN, vec![f64::NAN, f64::NAN])
        } else {
            (2.5 - x[0], vec![-1.0, 0.0])
        }
    }
}

#[test]
fn nan_subregion_is_sanitized_during_training_and_estimation() {
    let cfg = NofisConfig {
        levels: Levels::Fixed(vec![1.0, 0.0]),
        ..tiny_config()
    };
    let nofis = Nofis::new(cfg).expect("valid config");
    let mut rng = StdRng::seed_from_u64(6);
    let (trained, result) = nofis
        .run(&NanSubregion, &mut rng)
        .expect("NaN subregion must run");
    assert!(result.estimate.is_finite(), "estimate {}", result.estimate);
    assert!(result.estimate >= 0.0);
    for losses in trained.loss_history() {
        assert!(losses.iter().all(|l| l.is_finite()), "losses {losses:?}");
    }
}

#[test]
fn budget_exhaustion_is_a_typed_error_with_exact_accounting() {
    struct Slope;
    impl LimitState for Slope {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, x: &[f64]) -> f64 {
            3.0 - x[0]
        }
        fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
            (3.0 - x[0], vec![-1.0, 0.0])
        }
    }
    let oracle = CountingOracle::new(&Slope);
    let cfg = NofisConfig {
        // tiny_config needs 3 * (50 pilot + 4 * 40) calls; cap far below.
        max_calls: Some(100),
        ..tiny_config()
    };
    let nofis = Nofis::new(cfg).expect("valid config");
    let mut rng = StdRng::seed_from_u64(7);
    let err = nofis.run(&oracle, &mut rng).unwrap_err();
    match err {
        NofisError::BudgetExhausted { used, budget, .. } => {
            assert_eq!(budget, 100);
            assert_eq!(used, 100);
        }
        other => panic!("expected BudgetExhausted, got {other}"),
    }
    // Every consumed call is metered and the cap is never overrun.
    assert_eq!(oracle.calls(), 100);
}

#[test]
fn degenerate_proposal_engages_the_fallback_ladder() {
    struct RightTail;
    impl LimitState for RightTail {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, x: &[f64]) -> f64 {
            3.0 - x[0]
        }
        fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
            (3.0 - x[0], vec![-1.0, 0.0])
        }
    }
    /// Fails when x0 <= -1.5 (P ≈ 6.7e-2) — the opposite tail from the one
    /// the proposal was trained on, so the final proposal is degenerate for
    /// this event (few or no hits, unhealthy weights).
    struct LeftTail;
    impl LimitState for LeftTail {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, x: &[f64]) -> f64 {
            x[0] + 1.5
        }
    }
    // Train hard enough that the proposal genuinely concentrates on the
    // right tail (a barely-trained flow still covers the whole plane and
    // would sample the left tail healthily by accident).
    let cfg = NofisConfig {
        levels: Levels::Fixed(vec![1.5, 0.0]),
        layers_per_stage: 4,
        hidden: 16,
        epochs: 12,
        batch_size: 100,
        n_is: 400,
        tau: 15.0,
        learning_rate: 8e-3,
        ..Default::default()
    };
    let nofis = Nofis::new(cfg).expect("valid config");
    let mut rng = StdRng::seed_from_u64(8);
    let trained = nofis
        .train(&RightTail, &mut rng)
        .expect("training must succeed");

    let n_is = 400;
    let oracle = CountingOracle::new(&LeftTail);
    let result = trained
        .estimate(&oracle, n_is, &mut rng)
        .expect("ladder must produce a result");
    assert!(
        result.rung.is_fallback(),
        "mismatched proposal must not be accepted at the final rung: {}",
        result.rung
    );
    assert!(result.estimate.is_finite());
    assert!(result.estimate > 0.0, "defensive rungs must recover hits");
    // The ladder respects its hard budget of one tranche per rung.
    assert!(
        oracle.calls() <= 4 * n_is as u64,
        "ladder overran its budget: {} calls",
        oracle.calls()
    );
}

#[test]
fn divergent_training_rolls_back_or_fails_cleanly() {
    struct Slope;
    impl LimitState for Slope {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, x: &[f64]) -> f64 {
            3.0 - x[0]
        }
        fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
            (3.0 - x[0], vec![-1.0, 0.0])
        }
    }
    // An absurd learning rate forces divergent epochs; the trainer must
    // either recover through checkpoint rollback (with the retries recorded
    // in the stage reports) or return TrainingDiverged — never panic and
    // never emit NaN.
    let cfg = NofisConfig {
        levels: Levels::Fixed(vec![1.5, 0.0]),
        learning_rate: 1e9,
        ..tiny_config()
    };
    let nofis = Nofis::new(cfg).expect("valid config");
    let mut rng = StdRng::seed_from_u64(9);
    match nofis.run(&Slope, &mut rng) {
        Ok((trained, result)) => {
            assert!(result.estimate.is_finite(), "estimate {}", result.estimate);
            assert!(
                trained.stage_reports().iter().any(|r| r.rolled_back),
                "a 1e9 learning rate cannot train cleanly: {:?}",
                trained.stage_reports()
            );
            for r in trained.stage_reports() {
                assert!(r.learning_rate < 1e9, "retries must halve the lr: {r}");
            }
        }
        Err(err) => {
            assert!(matches!(err, NofisError::TrainingDiverged { .. }), "{err}");
            let msg = format!("{err}");
            assert!(msg.contains("diverged"), "{msg}");
        }
    }
}
