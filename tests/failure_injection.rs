//! Failure-injection tests: the library must degrade loudly and
//! predictably when fed pathological limit states or broken inputs.

use nofis_baselines::{
    AdaptIsEstimator, McEstimator, RareEventEstimator, SssEstimator, SusEstimator,
};
use nofis_core::{Levels, Nofis, NofisConfig};
use nofis_prob::{CountingOracle, LimitState, WeightDiagnostics};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A limit state that always fails: P = 1.
struct AlwaysFails;
impl LimitState for AlwaysFails {
    fn dim(&self) -> usize {
        3
    }
    fn value(&self, _: &[f64]) -> f64 {
        -1.0
    }
    fn value_grad(&self, _: &[f64]) -> (f64, Vec<f64>) {
        (-1.0, vec![0.0; 3])
    }
}

/// A limit state that never fails: P = 0.
struct NeverFails;
impl LimitState for NeverFails {
    fn dim(&self) -> usize {
        3
    }
    fn value(&self, _: &[f64]) -> f64 {
        1.0
    }
    fn value_grad(&self, _: &[f64]) -> (f64, Vec<f64>) {
        (1.0, vec![0.0; 3])
    }
}

/// Discontinuous, non-smooth limit state (no useful gradients anywhere).
struct Staircase;
impl LimitState for Staircase {
    fn dim(&self) -> usize {
        2
    }
    fn value(&self, x: &[f64]) -> f64 {
        3.0 - x[0].floor()
    }
}

fn tiny_config() -> NofisConfig {
    NofisConfig {
        levels: Levels::AdaptiveQuantile {
            max_stages: 3,
            p0: 0.2,
            pilot: 50,
        },
        layers_per_stage: 2,
        hidden: 8,
        epochs: 4,
        batch_size: 40,
        n_is: 200,
        ..Default::default()
    }
}

#[test]
fn certain_event_estimates_one() {
    let nofis = Nofis::new(tiny_config()).expect("valid config");
    let mut rng = StdRng::seed_from_u64(0);
    let (_, result) = nofis.run(&AlwaysFails, &mut rng);
    assert!((result.estimate - 1.0).abs() < 0.15, "p = {}", result.estimate);
}

#[test]
fn impossible_event_estimates_zero_without_panic() {
    let nofis = Nofis::new(tiny_config()).expect("valid config");
    let mut rng = StdRng::seed_from_u64(1);
    let (_, result) = nofis.run(&NeverFails, &mut rng);
    assert_eq!(result.estimate, 0.0);
    assert_eq!(result.hits, 0);
}

#[test]
fn non_smooth_limit_state_survives_training() {
    // The default finite-difference gradient of a staircase is zero almost
    // everywhere; NOFIS must still produce a finite (if poor) estimate.
    let nofis = Nofis::new(tiny_config()).expect("valid config");
    let mut rng = StdRng::seed_from_u64(2);
    let (_, result) = nofis.run(&Staircase, &mut rng);
    assert!(result.estimate.is_finite());
    assert!(result.estimate >= 0.0);
}

#[test]
fn baselines_handle_trivial_events() {
    let mut rng = StdRng::seed_from_u64(3);
    assert!((McEstimator::new(500).estimate(&AlwaysFails, &mut rng) - 1.0).abs() < 1e-12);
    assert_eq!(McEstimator::new(500).estimate(&NeverFails, &mut rng), 0.0);
    let sus = SusEstimator::new(200, 0.1, 3);
    assert!((sus.estimate(&AlwaysFails, &mut rng) - 1.0).abs() < 0.05);
    let sss = SssEstimator::new(600);
    let p = sss.estimate(&AlwaysFails, &mut rng);
    assert!(p > 0.3, "SSS on certain event: {p}");
    let ais = AdaptIsEstimator::new(100, 2, 200);
    assert!((ais.estimate(&AlwaysFails, &mut rng) - 1.0).abs() < 0.1);
}

#[test]
fn oracle_counts_are_exact_under_failure_paths() {
    // Even when an estimator bails out early (impossible event), every
    // consumed sample must be counted.
    let oracle = CountingOracle::new(&NeverFails);
    let mut rng = StdRng::seed_from_u64(4);
    let _ = McEstimator::new(1234).estimate(&oracle, &mut rng);
    assert_eq!(oracle.calls(), 1234);
}

#[test]
fn weight_diagnostics_flag_degenerate_is() {
    // Proposal far off target: one dominant weight among tiny ones.
    let mut lw = vec![-30.0; 40];
    lw[7] = 0.0;
    let d = WeightDiagnostics::from_log_weights(&lw);
    assert!(!d.looks_healthy());
    assert!(d.effective_sample_size < 2.0);
}

#[test]
fn nofis_rejects_one_dimensional_problems() {
    struct OneD;
    impl LimitState for OneD {
        fn dim(&self) -> usize {
            1
        }
        fn value(&self, x: &[f64]) -> f64 {
            3.0 - x[0]
        }
    }
    let nofis = Nofis::new(tiny_config()).expect("valid config");
    let mut rng = StdRng::seed_from_u64(5);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        nofis.train(&OneD, &mut rng)
    }));
    assert!(result.is_err(), "dim=1 must be rejected loudly");
}
