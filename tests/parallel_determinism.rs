//! Determinism lockdown for the parallel execution layer.
//!
//! DESIGN.md §8 promises: the thread count never affects results, only
//! wall-clock. These tests pin that contract bitwise — for the parallel
//! matmul (linalg and autograd), chunked oracle batch evaluation, the
//! external-rowwise tape op, and the importance-sampling / Monte Carlo
//! estimators — across pools of 1, 2, and 8 threads (deliberately
//! oversubscribing the host so scheduling actually interleaves).

use nofis::autograd::{Graph, Tensor};
use nofis::linalg::Matrix;
use nofis::parallel::ThreadPool;
use nofis::prob::{
    batch_values_with, importance_sampling_detailed_with_pool, monte_carlo_with_pool, LimitState,
    Proposal, StandardGaussian,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Deterministic pseudo-random fill so no test depends on rng crate
/// internals.
fn fill(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect()
}

fn assert_bits_eq(a: &[f64], b: &[f64], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{context}: index {i}: {x} vs {y}");
    }
}

#[test]
fn matrix_matmul_is_bitwise_identical_across_thread_counts() {
    // 130*65*70 multiply-adds — well above the parallel threshold; the
    // dimensions are not multiples of the row block.
    let (m, k, n) = (130, 65, 70);
    let mut a = Matrix::zeros(m, k);
    a.as_mut_slice().copy_from_slice(&fill(m * k, 11));
    let mut b = Matrix::zeros(k, n);
    b.as_mut_slice().copy_from_slice(&fill(k * n, 22));

    let serial = a.matmul_with(&b, &ThreadPool::new(1)).unwrap();
    for threads in THREAD_COUNTS {
        let par = a.matmul_with(&b, &ThreadPool::new(threads)).unwrap();
        assert_bits_eq(
            par.as_slice(),
            serial.as_slice(),
            &format!("Matrix::matmul, {threads} threads"),
        );
    }
}

#[test]
fn tensor_matmul_is_bitwise_identical_across_thread_counts() {
    let (m, k, n) = (96, 33, 41);
    let a = Tensor::from_vec(m, k, fill(m * k, 5));
    let b = Tensor::from_vec(k, n, fill(k * n, 6));
    let serial = a.matmul_with(&b, &ThreadPool::new(1));
    for threads in THREAD_COUNTS {
        let par = a.matmul_with(&b, &ThreadPool::new(threads));
        assert_bits_eq(
            par.as_slice(),
            serial.as_slice(),
            &format!("Tensor::matmul, {threads} threads"),
        );
    }
}

struct Ring;
impl LimitState for Ring {
    fn dim(&self) -> usize {
        3
    }
    fn value(&self, x: &[f64]) -> f64 {
        let r = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        (r - 2.5).abs() - 0.4
    }
}

#[test]
fn oracle_batch_eval_is_bitwise_identical_across_thread_counts() {
    // 259 samples: not a multiple of the 32-sample oracle chunk.
    let xs: Vec<Vec<f64>> = (0..259).map(|i| fill(3, 1000 + i as u64)).collect();
    let serial: Vec<f64> = xs.iter().map(|x| Ring.value(x)).collect();
    for threads in THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        let par = batch_values_with(&Ring, &xs, &pool);
        assert_bits_eq(&par, &serial, &format!("batch_values, {threads} threads"));
    }
}

#[test]
fn external_rowwise_par_matches_serial_tape_bitwise() {
    let (n, d) = (61, 4);
    let input = Tensor::from_vec(n, d, fill(n * d, 77));
    let f = |row: &[f64]| {
        let v: f64 = row.iter().map(|x| x * x).sum::<f64>().sqrt() - 1.5;
        let grad = row
            .iter()
            .map(|x| x / (v + 1.5).max(1e-12))
            .collect::<Vec<f64>>();
        (v, grad)
    };

    // Reference: the serial tape op.
    let run_serial = || {
        let mut g = Graph::new();
        let x = g.constant(input.clone());
        let out = g.external_rowwise(x, f);
        let loss = g.mean_all(out);
        g.backward(loss);
        (g.value(out).clone(), g.grad(x).unwrap().clone())
    };
    let (serial_out, serial_grad) = run_serial();

    for threads in THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        let mut g = Graph::new();
        let x = g.constant(input.clone());
        let out = g.external_rowwise_par(x, &pool, f);
        let loss = g.mean_all(out);
        g.backward(loss);
        assert_bits_eq(
            g.value(out).as_slice(),
            serial_out.as_slice(),
            &format!("external_rowwise_par values, {threads} threads"),
        );
        assert_bits_eq(
            g.grad(x).unwrap().as_slice(),
            serial_grad.as_slice(),
            &format!("external_rowwise_par grads, {threads} threads"),
        );
    }
}

#[test]
fn importance_sampling_is_bitwise_identical_across_thread_counts() {
    let p = StandardGaussian::new(3);
    let run = |threads: usize| {
        let pool = ThreadPool::new(threads);
        let mut rng = StdRng::seed_from_u64(424242);
        importance_sampling_detailed_with_pool(&Ring, 0.0, &p, &p, 2000, &mut rng, &pool)
    };
    let (base_result, base_lws) = run(1);
    assert!(base_result.hits > 0, "test event must be observable");
    for threads in THREAD_COUNTS {
        let (result, lws) = run(threads);
        assert_eq!(
            result.estimate.to_bits(),
            base_result.estimate.to_bits(),
            "estimate, {threads} threads"
        );
        assert_eq!(result.hits, base_result.hits, "hits, {threads} threads");
        assert_eq!(
            result.effective_sample_size.to_bits(),
            base_result.effective_sample_size.to_bits(),
            "ESS, {threads} threads"
        );
        assert_bits_eq(&lws, &base_lws, &format!("log-weights, {threads} threads"));
    }
}

#[test]
fn monte_carlo_is_identical_across_thread_counts() {
    let run = |threads: usize| {
        let pool = ThreadPool::new(threads);
        let mut rng = StdRng::seed_from_u64(7);
        monte_carlo_with_pool(&Ring, 0.5, 5000, &mut rng, &pool)
    };
    let base = run(1);
    assert!(base.hits > 0);
    for threads in THREAD_COUNTS {
        assert_eq!(run(threads), base, "{threads} threads");
    }
}

/// A shifted proposal exercises non-unit importance weights, so the
/// chunk-ordered `(Σw, Σw²)` reduction is actually doing floating-point
/// work (the Gaussian-proposal test above has all weights exactly 1).
struct Shifted3;
impl Proposal for Shifted3 {
    fn dim(&self) -> usize {
        3
    }
    fn sample(&self, mut rng: &mut dyn rand::RngCore) -> Vec<f64> {
        StandardGaussian::new(3)
            .sample(&mut rng)
            .into_iter()
            .map(|v| v * 1.3 + 0.4)
            .collect()
    }
    fn log_density(&self, x: &[f64]) -> f64 {
        let sg = StandardGaussian::new(3);
        let z: Vec<f64> = x.iter().map(|v| (v - 0.4) / 1.3).collect();
        sg.log_density(&z) - 3.0 * 1.3f64.ln()
    }
}

#[test]
fn weighted_reduction_is_bitwise_identical_across_thread_counts() {
    let p = StandardGaussian::new(3);
    let run = |threads: usize| {
        let pool = ThreadPool::new(threads);
        let mut rng = StdRng::seed_from_u64(99);
        importance_sampling_detailed_with_pool(&Ring, 0.0, &Shifted3, &p, 3000, &mut rng, &pool)
    };
    let (base_result, base_lws) = run(1);
    assert!(base_result.hits > 0);
    // Weights must genuinely vary for this test to mean anything.
    assert!(base_lws.iter().any(|&w| (w - base_lws[0]).abs() > 1e-9));
    for threads in THREAD_COUNTS {
        let (result, lws) = run(threads);
        assert_eq!(
            result.estimate.to_bits(),
            base_result.estimate.to_bits(),
            "weighted estimate, {threads} threads"
        );
        assert_bits_eq(
            &lws,
            &base_lws,
            &format!("weighted log-weights, {threads} threads"),
        );
    }
}
