//! Cross-crate integration tests: NOFIS against analytic golden
//! probabilities, budget accounting, and agreement with subset simulation.

use nofis_baselines::{RareEventEstimator, SusEstimator};
use nofis_core::{Levels, Nofis, NofisConfig};
use nofis_prob::{log_error, normal_cdf, CountingOracle, LimitState};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Analytic tail event: g = beta - <w, x> / ||w||, P = 1 - Φ(beta).
struct LinearTail {
    beta: f64,
    dim: usize,
}

impl LimitState for LinearTail {
    fn dim(&self) -> usize {
        self.dim
    }
    fn value(&self, x: &[f64]) -> f64 {
        let norm = (self.dim as f64).sqrt();
        self.beta - x.iter().sum::<f64>() / norm
    }
    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let norm = (self.dim as f64).sqrt();
        (self.value(x), vec![-1.0 / norm; self.dim])
    }
    fn name(&self) -> &str {
        "linear-tail"
    }
}

fn small_config(stages: usize) -> NofisConfig {
    NofisConfig {
        levels: Levels::AdaptiveQuantile {
            max_stages: stages,
            p0: 0.15,
            pilot: 100,
        },
        layers_per_stage: 4,
        hidden: 16,
        epochs: 12,
        batch_size: 120,
        n_is: 1_500,
        tau: 15.0,
        learning_rate: 8e-3,
        ..Default::default()
    }
}

#[test]
fn nofis_matches_analytic_tail_in_4d() {
    let ls = LinearTail { beta: 3.7, dim: 4 }; // P ≈ 1.08e-4
    let golden = 1.0 - normal_cdf(3.7);
    let oracle = CountingOracle::new(&ls);
    let mut rng = StdRng::seed_from_u64(99);
    let (_, result) = Nofis::new(small_config(4))
        .expect("valid config")
        .run(&oracle, &mut rng)
        .expect("run succeeds");
    let err = log_error(result.estimate, golden);
    assert!(
        err < 0.8,
        "NOFIS estimate {:.3e} vs golden {golden:.3e} (log error {err:.3})",
        result.estimate
    );
}

#[test]
fn nofis_and_sus_agree_on_shared_event() {
    let ls = LinearTail { beta: 3.5, dim: 6 }; // P ≈ 2.33e-4
    let mut rng = StdRng::seed_from_u64(4);
    let (_, nofis_result) = Nofis::new(small_config(4))
        .expect("valid config")
        .run(&ls, &mut rng)
        .expect("run succeeds");
    let sus = SusEstimator::new(2_000, 0.1, 8);
    let mut rng2 = StdRng::seed_from_u64(5);
    let p_sus = sus.estimate(&ls, &mut rng2);
    assert!(nofis_result.estimate > 0.0 && p_sus > 0.0);
    let ratio = (nofis_result.estimate.ln() - p_sus.ln()).abs();
    assert!(
        ratio < 1.2,
        "NOFIS {:.3e} and SUS {p_sus:.3e} disagree (|Δln| = {ratio:.2})",
        nofis_result.estimate
    );
}

#[test]
fn call_accounting_matches_configuration() {
    let ls = LinearTail { beta: 3.0, dim: 3 };
    let cfg = NofisConfig {
        levels: Levels::Fixed(vec![2.0, 1.0, 0.0]),
        layers_per_stage: 4,
        hidden: 16,
        epochs: 7,
        batch_size: 60,
        n_is: 333,
        ..Default::default()
    };
    let budget = cfg.training_budget() + 333;
    let oracle = CountingOracle::new(&ls);
    let mut rng = StdRng::seed_from_u64(0);
    let (trained, result) = Nofis::new(cfg)
        .expect("valid config")
        .run(&oracle, &mut rng)
        .expect("run succeeds");
    assert_eq!(oracle.calls(), budget);
    // A healthy run accepts the final proposal and reports clean stages.
    assert!(!result.rung.is_fallback(), "rung: {}", result.rung);
    assert!(trained.stage_reports().iter().all(|r| !r.truncated));
}

#[test]
fn frozen_training_leaves_earlier_stage_distribution_usable() {
    // After the full training, the stage-1 proposal must still be a sane
    // distribution: its density should integrate to ~1 on a generous grid.
    let ls = LinearTail { beta: 3.0, dim: 2 };
    let mut rng = StdRng::seed_from_u64(21);
    let trained = Nofis::new(small_config(3))
        .expect("valid config")
        .train(&ls, &mut rng)
        .expect("training succeeds");
    for stage in 1..=trained.stages() {
        let proposal = trained.stage_proposal(stage);
        let res = 80;
        let extent = 8.0;
        let step = 2.0 * extent / (res - 1) as f64;
        let mut mass = 0.0;
        for iy in 0..res {
            for ix in 0..res {
                let x = -extent + ix as f64 * step;
                let y = -extent + iy as f64 * step;
                mass += nofis_prob::Proposal::log_density(&proposal, &[x, y]).exp();
            }
        }
        mass *= step * step;
        assert!(
            (mass - 1.0).abs() < 0.15,
            "stage {stage} proposal mass {mass:.3} is not ≈ 1"
        );
    }
}
