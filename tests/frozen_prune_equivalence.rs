//! Pins the frozen-stage gradient-pruning contract: pruning removes
//! backward *work*, never backward *results*. Trainable-parameter
//! gradients, per-epoch losses, and final parameters must be bitwise
//! identical with pruning on or off — both for a hand-built single step
//! and for a full fixed-seed multi-stage NOFIS training run toggled
//! through `NofisConfig::prune_frozen`.

use nofis::autograd::{Graph, ParamStore, Tensor};
use nofis::core::{Levels, Nofis, NofisConfig};
use nofis::flows::RealNvp;
use nofis::prob::LimitState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fixed-seed dim-4, 6-layer flow with the first 4 layers frozen —
/// exactly the frozen-prefix shape of NOFIS stage-3 training.
fn frozen_prefix_flow(seed: u64) -> (ParamStore, RealNvp) {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let flow = RealNvp::new(&mut store, 4, 6, 8, 2.0, &mut rng);
    let ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
    let mut prng = StdRng::seed_from_u64(seed + 1);
    for id in ids {
        for v in store.get_mut(id).as_mut_slice() {
            *v += prng.gen_range(-0.3..0.3);
        }
    }
    for id in flow.param_ids_for_layers(0..4) {
        store.set_frozen(id, true);
    }
    (store, flow)
}

#[test]
fn single_step_gradients_are_bitwise_identical() {
    let x_data = Tensor::from_vec(
        8,
        4,
        (0..32).map(|i| ((i as f64) * 0.73).sin() * 1.2).collect(),
    );
    let run = |prune: bool| {
        let (store, flow) = frozen_prefix_flow(99);
        let mut g = Graph::new();
        g.set_pruning(prune);
        let x = g.constant(x_data.clone());
        let (z, logdet) = flow.forward_graph(&store, &mut g, x, 6);
        // A NOFIS-shaped loss: flow output norm plus log-det.
        let sq = g.square(z);
        let ssq = g.sum_cols(sq);
        let a = g.mean_all(ssq);
        let b = g.mean_all(logdet);
        let sum = g.add(a, b);
        let loss = g.neg(sum);
        g.backward(loss);
        (g.value(loss).item(), g.param_grads(), store, flow)
    };
    let (loss_p, grads_p, store, flow) = run(true);
    let (loss_u, grads_u, _, _) = run(false);
    assert_eq!(loss_p.to_bits(), loss_u.to_bits(), "loss drifted");

    // With pruning on, frozen parameters must not appear at all.
    let frozen: Vec<_> = flow.param_ids_for_layers(0..4);
    assert!(
        grads_p.iter().all(|(id, _)| !frozen.contains(id)),
        "pruned run materialized a frozen gradient"
    );
    // Every trainable gradient must match the unpruned run bit for bit.
    let trainable: Vec<_> = flow.param_ids_for_layers(4..6);
    assert!(!trainable.is_empty());
    for id in &trainable {
        assert!(!store.is_frozen(*id));
        let gp = &grads_p.iter().find(|(i, _)| i == id).expect("pruned").1;
        let gu = &grads_u.iter().find(|(i, _)| i == id).expect("full").1;
        for (a, b) in gp.as_slice().iter().zip(gu.as_slice()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "gradient of trainable param {} drifted",
                id.index()
            );
        }
    }
}

/// g(x) = 2 − x0 in 3-D with analytic gradient.
struct HalfSpace;
impl LimitState for HalfSpace {
    fn dim(&self) -> usize {
        3
    }
    fn value(&self, x: &[f64]) -> f64 {
        2.0 - x[0]
    }
    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        (2.0 - x[0], vec![-1.0, 0.0, 0.0])
    }
}

fn train_with(prune: bool) -> (Vec<Vec<f64>>, Vec<Tensor>) {
    let cfg = NofisConfig {
        levels: Levels::Fixed(vec![1.5, 0.75, 0.0]),
        layers_per_stage: 2,
        hidden: 8,
        epochs: 3,
        batch_size: 48,
        minibatch: 24,
        tau: 10.0,
        learning_rate: 5e-3,
        prune_frozen: prune,
        ..Default::default()
    };
    let nofis = Nofis::new(cfg).expect("valid config");
    let mut rng = StdRng::seed_from_u64(2024);
    let trained = nofis.train(&HalfSpace, &mut rng).expect("training");
    let (_, store) = trained.flow();
    let params: Vec<Tensor> = store.iter().map(|(_, t)| t.clone()).collect();
    (trained.loss_history().to_vec(), params)
}

#[test]
fn multi_stage_training_is_bitwise_identical_with_and_without_pruning() {
    let (losses_p, params_p) = train_with(true);
    let (losses_u, params_u) = train_with(false);

    assert_eq!(losses_p.len(), losses_u.len(), "stage count drifted");
    for (stage, (lp, lu)) in losses_p.iter().zip(&losses_u).enumerate() {
        assert_eq!(lp.len(), lu.len(), "epoch count drifted in stage {stage}");
        for (epoch, (a, b)) in lp.iter().zip(lu).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "stage {stage} epoch {epoch} loss drifted: {a} vs {b}"
            );
        }
    }
    assert_eq!(params_p.len(), params_u.len());
    for (i, (tp, tu)) in params_p.iter().zip(&params_u).enumerate() {
        for (a, b) in tp.as_slice().iter().zip(tu.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "final param {i} drifted");
        }
    }
}
