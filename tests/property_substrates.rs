//! Property-based tests on the simulator substrates: MNA circuit laws,
//! BPM physics, and test-case gradient consistency.

use nofis_circuit::{Circuit, MosParams, Node};
use nofis_photonics::{BpmConfig, BpmSolver, YBranch};
use nofis_prob::LimitState;
use nofis_testcases::{ChargePump, Leaf, Opamp, Oscillator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Voltage dividers obey the divider law for arbitrary positive
    /// resistances.
    #[test]
    fn divider_law(r1 in 10.0f64..1e6, r2 in 10.0f64..1e6, v in 0.1f64..10.0) {
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let mid = ckt.node();
        ckt.voltage_source(vin, Node::GROUND, v);
        ckt.resistor(vin, mid, r1);
        ckt.resistor(mid, Node::GROUND, r2);
        let dc = ckt.dc_solve().unwrap();
        let expected = v * r2 / (r1 + r2);
        prop_assert!((dc.voltage(mid) - expected).abs() < 1e-9 * v.abs());
    }

    /// Superposition: the response to two current sources equals the sum
    /// of the individual responses (linear network).
    #[test]
    fn superposition(i1 in -1e-3f64..1e-3, i2 in -1e-3f64..1e-3, r in 100.0f64..10_000.0) {
        let solve = |a: f64, b: f64| -> f64 {
            let mut ckt = Circuit::new();
            let n1 = ckt.node();
            let n2 = ckt.node();
            ckt.current_source(Node::GROUND, n1, a);
            ckt.current_source(Node::GROUND, n2, b);
            ckt.resistor(n1, n2, r);
            ckt.resistor(n1, Node::GROUND, 2.0 * r);
            ckt.resistor(n2, Node::GROUND, 3.0 * r);
            ckt.dc_solve().unwrap().voltage(n2)
        };
        let both = solve(i1, i2);
        let parts = solve(i1, 0.0) + solve(0.0, i2);
        prop_assert!((both - parts).abs() < 1e-9 * (1.0 + both.abs()));
    }

    /// RC low-pass magnitude response follows |H| = 1/√(1+(ωRC)²) at any
    /// frequency.
    #[test]
    fn rc_magnitude(omega_log in 0.0f64..6.0) {
        let omega = 10f64.powf(omega_log);
        let (r, c) = (1_000.0, 1e-6);
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let vout = ckt.node();
        ckt.voltage_source(vin, Node::GROUND, 1.0);
        ckt.resistor(vin, vout, r);
        ckt.capacitor(vout, Node::GROUND, c);
        let ac = ckt.ac_solve(omega).unwrap();
        let expected = 1.0 / (1.0 + (omega * r * c).powi(2)).sqrt();
        prop_assert!((ac.magnitude(vout) - expected).abs() < 1e-9);
    }

    /// Square-law drain current is continuous across the triode/saturation
    /// boundary and non-decreasing in V_gs.
    #[test]
    fn mosfet_monotone_in_vgs(vgs in 0.0f64..3.0, vds in 0.0f64..3.0) {
        let m = MosParams::nmos(50e-6, 1e-6, 0.5, 80e-6, 0.03);
        let id0 = m.evaluate(vgs, vds).id;
        let id1 = m.evaluate(vgs + 0.05, vds).id;
        prop_assert!(id1 >= id0 - 1e-15);
    }

    /// BPM conserves or loses power (the absorber only removes energy),
    /// for arbitrary small deformations.
    #[test]
    fn bpm_power_never_grows(c0 in -1.5f64..1.5, c1 in -1.5f64..1.5) {
        let solver = BpmSolver::new(
            YBranch::new(2),
            BpmConfig { nx: 41, nz: 30, ..Default::default() },
        );
        let run = solver.run(&[c0, c1]).unwrap();
        let power: f64 = run.output_magnitude.iter().map(|m| m * m).sum();
        prop_assert!(power <= 1.0 + 1e-9, "power {power}");
        prop_assert!(run.transmission >= 0.0 && run.transmission <= power + 1e-12);
    }

    /// Every registered limit-state gradient matches finite differences at
    /// random points (spot check on the four heterogeneous cases).
    #[test]
    fn case_gradients_are_consistent(seed in 0u64..200) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cases: Vec<Box<dyn LimitState + Sync>> = vec![
            Box::new(Leaf),
            Box::new(Opamp::default()),
            Box::new(ChargePump::default()),
            Box::new(Oscillator),
        ];
        for ls in &cases {
            let x: Vec<f64> = (0..ls.dim()).map(|_| rng.gen_range(-1.5..1.5)).collect();
            let (v, grad) = ls.value_grad(&x);
            prop_assert!((v - ls.value(&x)).abs() < 1e-10);
            // Directional finite-difference check along a random direction.
            let dir: Vec<f64> = (0..ls.dim()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let eps = 1e-6;
            let xp: Vec<f64> = x.iter().zip(&dir).map(|(a, d)| a + eps * d).collect();
            let xm: Vec<f64> = x.iter().zip(&dir).map(|(a, d)| a - eps * d).collect();
            let fd = (ls.value(&xp) - ls.value(&xm)) / (2.0 * eps);
            let analytic: f64 = grad.iter().zip(&dir).map(|(g, d)| g * d).sum();
            prop_assert!(
                (fd - analytic).abs() < 1e-4 * (1.0 + fd.abs()),
                "{}: directional fd {fd} vs analytic {analytic}",
                ls.name()
            );
        }
    }
}
