//! Property battery for the trace-once/replay engine (DESIGN.md §13).
//!
//! The compiled `CompiledStep` path must be a bitwise-identical drop-in
//! for rebuilding and interpreting the tape every step: same forward
//! values, same parameter gradients, same Adam moments, same trained
//! parameters — across random shapes, partial depths, frozen masks,
//! external-eval thread counts, and recompile ("resume") boundaries.
//! These tests drive two lanes sharing identical inputs — one always
//! interpreted, one compiled with recompiles injected mid-sequence — and
//! require exact bit equality everywhere, which is what licenses
//! `NofisConfig::compile_tape` defaulting to on.

use nofis::autograd::{CompiledStep, Graph, ParamStore, Var};
use nofis::core::{Levels, Nofis, NofisConfig};
use nofis::flows::RealNvp;
use nofis::nn::Adam;
use nofis::prob::{IsResult, LimitState};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard};

/// Process-global lock for tests that touch environment variables.
static GLOBAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

const TAU: f64 = 8.0;
const LEVEL: f64 = 0.6;
const LN_2PI: f64 = 1.8378770664093453;

/// Deterministic batch filler: same (seed, step) → same batch, so both
/// lanes consume identical inputs without sharing an RNG.
fn fill_batch(buf: &mut [f64], seed: u64, step: u64) {
    let mut state = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(step)
        .wrapping_add(0xA076_1D64_78BD_642F);
    for v in buf.iter_mut() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Map to a smallish symmetric range like base samples.
        *v = ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0;
    }
}

/// The external oracle both engines evaluate row-wise: affine in the first
/// two coordinates so the Jacobian is exact, with a non-finite pocket that
/// exercises the sanitize path.
fn oracle(row: &[f64]) -> (f64, Vec<f64>) {
    let mut grad = vec![0.0; row.len()];
    if row[0] > 1.9 {
        // Broken simulator subregion → sanitized by the caller.
        return (f64::NAN, grad);
    }
    grad[0] = -1.0;
    if row.len() > 1 {
        grad[1] = 0.25;
    }
    (
        LEVEL + 0.3 - row[0] + 0.25 * row.get(1).copied().unwrap_or(0.0),
        grad,
    )
}

/// The sanitize wrapper the train loop applies around the oracle.
fn sanitized(row: &[f64]) -> (f64, Vec<f64>) {
    let (v, grad) = oracle(row);
    if v.is_finite() && grad.iter().all(|g| g.is_finite()) {
        (v, grad)
    } else {
        (LEVEL + 1.0, vec![0.0; row.len()])
    }
}

/// Builds the NOFIS training tape (forward transform, external oracle,
/// tempered-KL loss) exactly like the train loop does.
fn trace_step(
    store: &ParamStore,
    flow: &RealNvp,
    batch: &[f64],
    dim: usize,
    depth: usize,
    pool: &nofis_parallel::ThreadPool,
) -> (Graph, Var, Var, Var) {
    let mut g = Graph::new();
    g.set_pruning(true);
    let x = g.constant_with(batch.len() / dim, dim, |buf| buf.copy_from_slice(batch));
    let (z, logdet) = flow.forward_graph(store, &mut g, x, depth);
    let gvals = g.external_rowwise_par(z, pool, sanitized);
    let neg_tau_g = g.scale(gvals, -TAU);
    let shifted = g.add_scalar(neg_tau_g, TAU * LEVEL);
    let tempered = g.min_scalar(shifted, 0.0);
    let sq = g.square(z);
    let ssq = g.sum_cols(sq);
    let half = g.scale(ssq, -0.5);
    let logp = g.add_scalar(half, -0.5 * dim as f64 * LN_2PI);
    let a = g.add(logdet, tempered);
    let per_sample = g.add(a, logp);
    let mean = g.mean_all(per_sample);
    let loss = g.neg(mean);
    (g, x, logdet, loss)
}

fn build_model(
    seed: u64,
    dim: usize,
    layers: usize,
    hidden: usize,
    frozen_layers: usize,
) -> (ParamStore, RealNvp) {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let flow = RealNvp::new(&mut store, dim, layers, hidden, 2.0, &mut rng);
    for id in flow.param_ids_for_layers(0..frozen_layers) {
        store.set_frozen(id, true);
    }
    (store, flow)
}

fn assert_stores_bitwise(a: &ParamStore, b: &ParamStore, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: param count");
    for ((ida, ta), (idb, tb)) in a.iter().zip(b.iter()) {
        assert_eq!(ida, idb, "{what}: param order");
        for (i, (xa, xb)) in ta.as_slice().iter().zip(tb.as_slice()).enumerate() {
            assert_eq!(
                xa.to_bits(),
                xb.to_bits(),
                "{what}: param {ida:?}[{i}] diverged ({xa:e} vs {xb:e})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two lanes over identical inputs: lane A rebuilds and interprets the
    /// tape every step; lane B compiles once and replays, with a forced
    /// recompile at a random step (the checkpoint/resume boundary: resume
    /// always starts with a cold cache) and a frozen-mask flip near the
    /// end (the stage boundary: freezing must invalidate the plan). After
    /// every step, parameters and losses must match bit for bit; at the
    /// end, so must the Adam moments.
    #[test]
    fn compiled_lane_is_bitwise_identical_to_interpreted_lane(
        seed in 0u64..1_000,
        dim in 2usize..5,
        layers in 1usize..5,
        hidden in 2usize..9,
        n in 1usize..17,
        frozen in 0usize..5,
        depth_hint in 1usize..5,
        threads_sel in 0usize..2,
        recompile_at in 0u64..4,
    ) {
        let frozen_layers = frozen.min(layers.saturating_sub(1));
        let depth = depth_hint.clamp(1, layers);
        let threads = [1usize, 4][threads_sel];
        let pool = nofis_parallel::ThreadPool::new(threads);
        let (mut store_a, flow) = build_model(seed, dim, layers, hidden, frozen_layers);
        let (mut store_b, _) = build_model(seed, dim, layers, hidden, frozen_layers);
        assert_stores_bitwise(&store_a, &store_b, "init");
        let mut opt_a = Adam::new(4e-3).with_max_grad_norm(Some(5.0));
        let mut opt_b = Adam::new(4e-3).with_max_grad_norm(Some(5.0));
        let mut compiled: Option<(CompiledStep, Var)> = None;
        let mut batch = vec![0.0; n * dim];
        const STEPS: u64 = 6;
        const MASK_FLIP_AT: u64 = 4;
        for step in 0..STEPS {
            if step == MASK_FLIP_AT {
                // Stage-boundary emulation: freeze one more layer (or
                // unfreeze everything when already maximally frozen).
                for id in flow.param_ids_for_layers(0..frozen_layers + 1) {
                    let now = store_a.is_frozen(id);
                    store_a.set_frozen(id, !now);
                    store_b.set_frozen(id, !now);
                }
            }
            fill_batch(&mut batch, seed, step);

            // Lane A: always interpreted.
            let (mut ga, _, _, loss_a) =
                trace_step(&store_a, &flow, &batch, dim, depth, &pool);
            let loss_a_val = ga.value(loss_a).item();
            ga.backward(loss_a);
            opt_a.step_fused(&mut store_a, &ga);

            // Lane B: compiled, with injected recompiles. The mask check
            // mirrors the train loop's cache key.
            if step == recompile_at {
                compiled = None; // resume boundary: cold cache
            }
            let valid = compiled
                .as_ref()
                .is_some_and(|(c, _)| c.batch_rows() == Some(n) && c.mask_matches(&store_b));
            let loss_b_val = if valid {
                let (c, loss_b) = compiled.as_mut().expect("validity checked");
                c.replay_forward(
                    &store_b,
                    |buf| buf.copy_from_slice(&batch),
                    &pool,
                    sanitized,
                );
                c.backward();
                opt_b.step_fused(&mut store_b, &*c);
                c.value(*loss_b).item()
            } else {
                let (mut gb, x, _, loss_b) =
                    trace_step(&store_b, &flow, &batch, dim, depth, &pool);
                let v = gb.value(loss_b).item();
                gb.backward(loss_b);
                let c = CompiledStep::compile(&gb, loss_b, Some(x), &store_b);
                opt_b.step_fused(&mut store_b, &gb);
                compiled = Some((c, loss_b));
                v
            };

            assert_eq!(
                loss_a_val.to_bits(),
                loss_b_val.to_bits(),
                "loss diverged at step {step} ({loss_a_val:e} vs {loss_b_val:e})"
            );
            assert_stores_bitwise(&store_a, &store_b, &format!("after step {step}"));
        }
        assert_eq!(opt_a.export_state(), opt_b.export_state());
    }
}

/// Replaying against a store whose frozen mask changed since compile must
/// panic (the preplanned gradient set is stale) rather than silently
/// producing wrong gradients — the engine-level guard behind the
/// train-loop cache key.
#[test]
fn stale_frozen_mask_replay_panics() {
    let (mut store, flow) = build_model(7, 3, 2, 4, 0);
    let pool = nofis_parallel::ThreadPool::new(1);
    let mut batch = vec![0.0; 4 * 3];
    fill_batch(&mut batch, 7, 0);
    let (g, x, _, loss) = trace_step(&store, &flow, &batch, 3, 2, &pool);
    let mut compiled = CompiledStep::compile(&g, loss, Some(x), &store);
    assert!(compiled.mask_matches(&store));
    for id in flow.param_ids_for_layers(0..1) {
        store.set_frozen(id, true);
    }
    assert!(
        !compiled.mask_matches(&store),
        "mask change must be visible"
    );
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        compiled.replay_forward(&store, |buf| buf.copy_from_slice(&batch), &pool, sanitized);
    }));
    assert!(res.is_err(), "stale-mask replay must refuse to run");
}

struct HalfSpace {
    beta: f64,
}
impl LimitState for HalfSpace {
    fn dim(&self) -> usize {
        2
    }
    fn value(&self, x: &[f64]) -> f64 {
        self.beta - x[0]
    }
    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        (self.beta - x[0], vec![-1.0, 0.0])
    }
    fn name(&self) -> &str {
        "half-space"
    }
}

fn tiny_config() -> NofisConfig {
    NofisConfig {
        levels: Levels::Fixed(vec![1.0, 0.0]),
        layers_per_stage: 2,
        hidden: 8,
        epochs: 3,
        batch_size: 30,
        minibatch: 10,
        n_is: 150,
        tau: 10.0,
        learning_rate: 5e-3,
        ..Default::default()
    }
}

fn run(cfg: NofisConfig, seed: u64) -> IsResult {
    let mut rng = StdRng::seed_from_u64(seed);
    Nofis::new(cfg)
        .unwrap()
        .run(&HalfSpace { beta: 2.4 }, &mut rng)
        .unwrap()
        .1
}

/// End-to-end: a full multi-stage `Nofis::run` with the compiled engine
/// (the default) is bitwise identical to the same run with it disabled —
/// estimate, hit count, and ESS. The compiled path crosses stage
/// boundaries (mask changes), tail minibatches (30 % 10 == 0 here, but
/// epochs × stages exercises many replays), and divergence checks.
#[test]
fn full_run_is_bitwise_identical_with_compilation_on_or_off() {
    let _guard = serial();
    let on = run(
        NofisConfig {
            compile_tape: true,
            ..tiny_config()
        },
        42,
    );
    let off = run(
        NofisConfig {
            compile_tape: false,
            ..tiny_config()
        },
        42,
    );
    assert_eq!(on.estimate.to_bits(), off.estimate.to_bits(), "estimate");
    assert_eq!(on.hits, off.hits, "hits");
    assert_eq!(
        on.effective_sample_size.to_bits(),
        off.effective_sample_size.to_bits(),
        "ess"
    );
}

/// An uneven minibatch tail (batch_size % minibatch != 0) forces a
/// retrace every epoch (two tape shapes alternate); results must still
/// be bitwise identical to the interpreted engine.
#[test]
fn uneven_minibatch_tail_is_bitwise_identical() {
    let _guard = serial();
    let cfg = NofisConfig {
        batch_size: 25, // 10 + 10 + 5 per epoch
        ..tiny_config()
    };
    let on = run(
        NofisConfig {
            compile_tape: true,
            ..cfg.clone()
        },
        7,
    );
    let off = run(
        NofisConfig {
            compile_tape: false,
            ..cfg
        },
        7,
    );
    assert_eq!(on.estimate.to_bits(), off.estimate.to_bits(), "estimate");
    assert_eq!(on.hits, off.hits, "hits");
    assert_eq!(
        on.effective_sample_size.to_bits(),
        off.effective_sample_size.to_bits(),
        "ess"
    );
}

/// `NOFIS_COMPILE` strictly parses `0`/`1` and overrides the config field
/// in `Nofis::new`; malformed values are a `ConfigError`, never a silent
/// fallback.
#[test]
fn nofis_compile_env_overrides_and_validates() {
    let _guard = serial();
    std::env::set_var("NOFIS_COMPILE", "0");
    let est = Nofis::new(tiny_config()).unwrap();
    assert!(!est.config().compile_tape, "NOFIS_COMPILE=0 disables");
    std::env::set_var("NOFIS_COMPILE", "1");
    let est = Nofis::new(NofisConfig {
        compile_tape: false,
        ..tiny_config()
    })
    .unwrap();
    assert!(est.config().compile_tape, "NOFIS_COMPILE=1 enables");
    std::env::set_var("NOFIS_COMPILE", "yes");
    assert!(
        Nofis::new(tiny_config()).is_err(),
        "malformed NOFIS_COMPILE must be a ConfigError"
    );
    std::env::remove_var("NOFIS_COMPILE");
}
