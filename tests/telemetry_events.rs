//! Telemetry contract tests: the instrumented pipeline emits the expected
//! structured event sequence, and — the other half of the contract —
//! telemetry *observes but never influences*: every numeric output is
//! bitwise identical with sinks attached or absent (DESIGN.md §10).
//!
//! The sink registry is process-global, so every test serializes on one
//! lock and detaches its sink before releasing it.

use nofis_core::{Levels, Nofis, NofisConfig};
use nofis_prob::{CountingOracle, FallbackRung, LimitState};
use nofis_telemetry::{self as tele, Event, Level, MemorySink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex};

static LOCK: Mutex<()> = Mutex::new(());

/// g(x) = 1.5 - x0 in 2-D with analytic gradients.
struct RightTail;
impl LimitState for RightTail {
    fn dim(&self) -> usize {
        2
    }
    fn value(&self, x: &[f64]) -> f64 {
        1.5 - x[0]
    }
    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        (1.5 - x[0], vec![-1.0, 0.0])
    }
}

/// Fails on the opposite tail (x0 <= -1.5), so a proposal trained on
/// [`RightTail`] is degenerate for it and the fallback ladder engages.
struct LeftTail;
impl LimitState for LeftTail {
    fn dim(&self) -> usize {
        2
    }
    fn value(&self, x: &[f64]) -> f64 {
        x[0] + 1.5
    }
}

fn two_stage_config() -> NofisConfig {
    NofisConfig {
        levels: Levels::Fixed(vec![1.0, 0.0]),
        layers_per_stage: 2,
        hidden: 8,
        epochs: 4,
        batch_size: 40,
        minibatch: 20,
        n_is: 200,
        ..Default::default()
    }
}

/// Runs `f` with a fresh in-memory sink attached, returning everything it
/// recorded. The sink is detached before the registry lock is released.
fn capture<T>(min_level: Level, f: impl FnOnce() -> T) -> (Vec<Event>, T) {
    let sink = Arc::new(MemorySink::new(min_level));
    let id = tele::add_sink(sink.clone());
    let out = f();
    tele::remove_sink(id);
    (sink.events(), out)
}

fn index_of(events: &[Event], pred: impl Fn(&Event) -> bool) -> usize {
    events
        .iter()
        .position(pred)
        .unwrap_or_else(|| panic!("expected event not recorded"))
}

#[test]
fn two_stage_run_emits_expected_event_sequence() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = two_stage_config();
    let (epochs, batch, minibatch, n_is) = (cfg.epochs, cfg.batch_size, cfg.minibatch, cfg.n_is);
    let oracle = CountingOracle::new(&RightTail);
    let (events, result) = capture(Level::Trace, || {
        let mut rng = StdRng::seed_from_u64(42);
        Nofis::new(cfg)
            .expect("valid config")
            .run(&oracle, &mut rng)
    });
    let (_, result) = result.expect("two-stage run succeeds");

    // Ordering: run start, then per-stage start/span pairs in stage order,
    // then training end, then the estimation span.
    let start = index_of(&events, |e| e.name == "train.start");
    let stage_starts: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.name == "train.stage.start")
        .map(|(i, _)| i)
        .collect();
    let stage_spans: Vec<&Event> = events
        .iter()
        .filter(|e| e.name == "train.stage" && e.kind == tele::Kind::Span)
        .collect();
    let end = index_of(&events, |e| e.name == "train.end");
    let estimate = index_of(&events, |e| {
        e.name == "estimate" && e.kind == tele::Kind::Span
    });
    assert_eq!(stage_starts.len(), 2, "one start per stage");
    assert_eq!(stage_spans.len(), 2, "one span per stage");
    assert!(start < stage_starts[0] && stage_starts[0] < stage_starts[1]);
    assert!(stage_starts[1] < end && end < estimate);

    // Per-stage span payloads: stage number, the full epoch count, the
    // step count implied by the minibatch split, and the oracle spend.
    let steps_per_stage = (epochs * batch.div_ceil(minibatch)) as u64;
    for (i, span) in stage_spans.iter().enumerate() {
        assert_eq!(span.u64_field("stage"), Some(i as u64 + 1));
        assert_eq!(span.u64_field("epochs"), Some(epochs as u64));
        assert_eq!(span.u64_field("steps"), Some(steps_per_stage));
        assert_eq!(span.u64_field("retries"), Some(0));
        assert_eq!(span.bool_field("truncated"), Some(false));
        assert_eq!(
            span.u64_field("oracle_calls"),
            Some((epochs * batch) as u64)
        );
        assert!(span.duration_us.is_some(), "spans carry a duration");
    }
    assert_eq!(events[stage_starts[0]].f64_field("level"), Some(1.0));
    assert_eq!(events[stage_starts[1]].f64_field("level"), Some(0.0));

    // Per-step events carry loss and the pre-clip gradient norm.
    let steps: Vec<&Event> = events.iter().filter(|e| e.name == "train.step").collect();
    assert_eq!(steps.len(), 2 * steps_per_stage as usize);
    assert!(steps.iter().all(|e| e.f64_field("loss").is_some()));
    assert!(steps.iter().all(|e| e.f64_field("grad_norm").is_some()));

    // The healthy path records exactly one accepted rung on the estimate
    // span, consistent with the returned result.
    let est = &events[estimate];
    assert_eq!(est.str_field("rung"), Some("final_proposal"));
    assert_eq!(est.u64_field("rank"), Some(result.rung.rank() as u64));
    assert_eq!(est.u64_field("oracle_calls"), Some(n_is as u64));
    assert_eq!(
        est.f64_field("estimate").map(f64::to_bits),
        Some(result.estimate.to_bits())
    );

    // Snapshot counters surface the autograd pool and pruning meters.
    for name in [
        "autograd.pool.hits",
        "autograd.pool.misses",
        "autograd.backward.skipped",
        "oracle.calls",
        "parallel.runs",
    ] {
        assert!(
            events
                .iter()
                .any(|e| e.name == name && e.kind == tele::Kind::Counter),
            "missing counter {name}"
        );
    }

    // Once the sink is detached the disabled fast path is restored.
    assert!(!tele::enabled(Level::Error));
}

#[test]
fn divergence_and_rollback_events_fire() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = NofisConfig {
        learning_rate: 1e9,
        ..two_stage_config()
    };
    let (events, outcome) = capture(Level::Trace, || {
        let mut rng = StdRng::seed_from_u64(9);
        Nofis::new(cfg)
            .expect("valid config")
            .run(&RightTail, &mut rng)
    });

    let divergences: Vec<&Event> = events
        .iter()
        .filter(|e| e.name == "train.divergence")
        .collect();
    assert!(
        !divergences.is_empty(),
        "a 1e9 learning rate must emit at least one divergence"
    );
    assert!(divergences
        .iter()
        .all(|e| e.level == Level::Warn && e.str_field("detail").is_some()));

    let rollbacks: Vec<&Event> = events
        .iter()
        .filter(|e| e.name == "train.rollback")
        .collect();
    match outcome {
        Ok((trained, _)) => {
            let total_retries: usize = trained.stage_reports().iter().map(|r| r.retries).sum();
            assert_eq!(rollbacks.len(), total_retries, "one event per retry");
            assert!(rollbacks.iter().all(|e| e.f64_field("lr").unwrap() < 1e9));
        }
        Err(_) => {
            // Training gave up: every retry before the failure was logged.
            assert_eq!(divergences.len(), rollbacks.len() + 1);
        }
    }
}

#[test]
fn fallback_ladder_emits_rung_events() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Train hard on the right tail so the proposal genuinely concentrates
    // there, then estimate the opposite tail: the ladder must descend.
    let cfg = NofisConfig {
        levels: Levels::Fixed(vec![1.5, 0.0]),
        layers_per_stage: 4,
        hidden: 16,
        epochs: 12,
        batch_size: 100,
        n_is: 400,
        tau: 15.0,
        learning_rate: 8e-3,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(8);
    let trained = Nofis::new(cfg)
        .expect("valid config")
        .train(&RightTail, &mut rng)
        .expect("training succeeds");

    let (events, result) = capture(Level::Trace, || trained.estimate(&LeftTail, 400, &mut rng));
    let result = result.expect("ladder produces a result");
    assert!(result.rung.is_fallback(), "got {}", result.rung);

    let rungs: Vec<&Event> = events
        .iter()
        .filter(|e| e.name == "estimate.rung")
        .collect();
    assert!(rungs.len() >= 2, "a descent must record multiple attempts");
    assert_eq!(rungs[0].str_field("rung"), Some("final_proposal"));
    assert_eq!(rungs[0].bool_field("healthy"), Some(false));
    // Attempts walk down the ladder in rank order.
    let ranks: Vec<u64> = rungs.iter().filter_map(|e| e.u64_field("rank")).collect();
    assert!(ranks.windows(2).all(|w| w[0] < w[1]), "ranks {ranks:?}");

    let accepted = match result.rung {
        FallbackRung::FinalProposal => "final_proposal",
        FallbackRung::StageProposal { .. } => "stage_proposal",
        FallbackRung::DefensiveMixture { .. } => "defensive_mixture",
        FallbackRung::PlainMonteCarlo => "plain_monte_carlo",
    };
    let est = events
        .iter()
        .find(|e| e.name == "estimate" && e.kind == tele::Kind::Span)
        .expect("estimate span recorded");
    assert_eq!(est.str_field("rung"), Some(accepted));
}

#[test]
fn invalid_nofis_threads_is_a_typed_config_error() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("NOFIS_THREADS", "fourx");
    let err = Nofis::new(two_stage_config()).unwrap_err();
    std::env::remove_var("NOFIS_THREADS");
    let msg = err.to_string();
    assert!(msg.contains("NOFIS_THREADS"), "{msg}");
    assert!(msg.contains("fourx"), "{msg}");
    // A valid value (and an unset variable) still construct fine.
    std::env::set_var("NOFIS_THREADS", "2");
    assert!(Nofis::new(two_stage_config()).is_ok());
    std::env::remove_var("NOFIS_THREADS");
}

#[test]
fn results_are_bitwise_identical_with_telemetry_on_and_off() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let run = || {
        let mut rng = StdRng::seed_from_u64(2024);
        Nofis::new(two_stage_config())
            .expect("valid config")
            .run(&RightTail, &mut rng)
            .expect("run succeeds")
    };
    let (trained_off, result_off) = run();
    let (events, (trained_on, result_on)) = capture(Level::Trace, run);
    assert!(!events.is_empty(), "the sink observed the run");

    assert_eq!(
        result_off.estimate.to_bits(),
        result_on.estimate.to_bits(),
        "estimate must not depend on telemetry"
    );
    assert_eq!(result_off.hits, result_on.hits);
    assert_eq!(
        result_off.effective_sample_size.to_bits(),
        result_on.effective_sample_size.to_bits()
    );
    assert_eq!(trained_off.levels(), trained_on.levels());
    let bits = |h: &[Vec<f64>]| -> Vec<Vec<u64>> {
        h.iter()
            .map(|s| s.iter().map(|l| l.to_bits()).collect())
            .collect()
    };
    assert_eq!(
        bits(trained_off.loss_history()),
        bits(trained_on.loss_history()),
        "per-epoch losses must be bitwise identical"
    );
}
