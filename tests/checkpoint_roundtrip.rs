//! Property tests for the checkpoint binary codec (DESIGN.md §11).
//!
//! Two properties:
//!
//! 1. **Exact round-trip**: for randomly shaped checkpoints — including
//!    NaN, ±∞, and −0.0 payloads, mid-stage cursors, and sparse Adam
//!    moments — `encode → decode → encode` reproduces the original byte
//!    stream exactly. Byte-level comparison sidesteps `NaN != NaN` while
//!    proving every bit (floats are stored as raw IEEE-754 bits) survives.
//! 2. **Adversarial decode safety**: `decode` of arbitrary bytes — random
//!    garbage, or a valid encoding after truncation/corruption — returns
//!    `Err`, never panics and never over-allocates on implausible counts.

use nofis::autograd::Tensor;
use nofis::core::checkpoint::{self, Checkpoint, StagePartial};
use nofis::core::StageReport;
use nofis::nn::AdamState;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One float drawn from a pool that includes every bit-pattern class the
/// codec must preserve exactly.
fn weird_f64(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0..8u32) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        4 => 0.0,
        5 => f64::MIN_POSITIVE / 2.0, // subnormal
        _ => rng.gen_range(-1e12..1e12),
    }
}

fn random_tensor(rng: &mut StdRng) -> Tensor {
    let rows = rng.gen_range(1..4usize);
    let cols = rng.gen_range(1..5usize);
    let data = (0..rows * cols).map(|_| weird_f64(rng)).collect();
    Tensor::from_vec(rows, cols, data)
}

fn random_checkpoint(seed: u64) -> Checkpoint {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_params = rng.gen_range(0..6usize);
    let params: Vec<Tensor> = (0..n_params).map(|_| random_tensor(&mut rng)).collect();
    let n_stages = rng.gen_range(0..3usize);
    let partial = if rng.gen_bool(0.5) {
        let adam = AdamState {
            moments: (0..n_params)
                .map(|_| {
                    rng.gen_bool(0.5)
                        .then(|| (random_tensor(&mut rng), random_tensor(&mut rng)))
                })
                .collect(),
            steps: (0..n_params).map(|_| rng.gen()).collect(),
        };
        Some(StagePartial {
            stage: rng.gen_range(0..4),
            epoch: rng.gen_range(0..10),
            consumed: rng.gen_range(0..1000),
            epoch_loss: weird_f64(&mut rng),
            stage_losses: (0..rng.gen_range(0..5usize))
                .map(|_| weird_f64(&mut rng))
                .collect(),
            best_loss: weird_f64(&mut rng),
            retries: rng.gen_range(0..3),
            learning_rate: rng.gen_range(1e-6..1.0),
            stage_steps: rng.gen(),
            best_params: (0..n_params).map(|_| random_tensor(&mut rng)).collect(),
            epoch_start_params: (0..n_params).map(|_| random_tensor(&mut rng)).collect(),
            adam,
        })
    } else {
        None
    };
    Checkpoint {
        config_fingerprint: rng.gen(),
        dim: rng.gen_range(2..64),
        global_step: rng.gen(),
        rng_state: [rng.gen(), rng.gen(), rng.gen(), rng.gen()],
        oracle_spent: rng.gen(),
        done: rng.gen_bool(0.5),
        levels: (0..n_stages + 1).map(|_| weird_f64(&mut rng)).collect(),
        loss_history: (0..n_stages)
            .map(|_| {
                (0..rng.gen_range(0..4usize))
                    .map(|_| weird_f64(&mut rng))
                    .collect()
            })
            .collect(),
        stage_reports: (0..n_stages)
            .map(|s| StageReport {
                stage: s + 1,
                level: weird_f64(&mut rng),
                epochs_run: rng.gen_range(0..20),
                retries: rng.gen_range(0..4),
                rolled_back: rng.gen_bool(0.3),
                best_loss: weird_f64(&mut rng),
                final_loss: weird_f64(&mut rng),
                learning_rate: rng.gen_range(1e-6..1.0),
                truncated: rng.gen_bool(0.1),
            })
            .collect(),
        frozen: (0..n_params).map(|_| rng.gen_bool(0.5)).collect(),
        params,
        partial,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_encode_is_the_identity(seed in 0u64..1_000_000) {
        let original = random_checkpoint(seed);
        let bytes = checkpoint::encode(&original);
        let decoded = checkpoint::decode(&bytes).expect("valid encoding must decode");
        let re_encoded = checkpoint::encode(&decoded);
        prop_assert_eq!(&bytes, &re_encoded);
        // Spot-check structure on top of the byte identity.
        prop_assert_eq!(decoded.params.len(), original.params.len());
        prop_assert_eq!(decoded.partial.is_some(), original.partial.is_some());
        prop_assert_eq!(decoded.rng_state, original.rng_state);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(words in prop::collection::vec(0u32..256, 1..256)) {
        // Pure garbage: must be a clean Err (the magic/CRC almost surely
        // fail) and must never panic or abort on an implausible count.
        let bytes: Vec<u8> = words.iter().map(|&b| b as u8).collect();
        let _ = checkpoint::decode(&bytes);
        // Empty input is the degenerate prefix.
        let _ = checkpoint::decode(&[]);
    }

    #[test]
    fn corrupted_valid_encodings_never_panic(seed in 0u64..10_000, flip in 0usize..4096, cut in 0usize..4096) {
        let mut bytes = checkpoint::encode(&random_checkpoint(seed));
        let n = bytes.len();
        bytes[flip % n] ^= 0x55;
        bytes.truncate(cut % (n + 1));
        // Always an error: an untruncated buffer carries the flipped byte
        // (CRC/magic/length catches it), and any strict prefix fails the
        // length check before the payload is even touched.
        prop_assert!(checkpoint::decode(&bytes).is_err());
    }
}
