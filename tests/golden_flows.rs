//! Golden-value regression tests for the RealNVP flow numerics.
//!
//! A fixed-seed flow is evaluated at fixed points and compared against
//! checked-in constants, so any kernel change (including the parallel
//! matmul path) that silently drifts the numerics fails loudly here. The
//! constants were produced by this exact code; tolerances are a few ulps
//! scaled (1e-12 relative), far below any legitimate refactoring noise
//! but far above what an algorithmic change would produce.

// Goldens are checked in at full 17-significant-digit round-trip precision
// so they pin the exact f64 bit pattern, not a rounded neighborhood.
#![allow(clippy::excessive_precision)]

use nofis::autograd::{CompiledStep, Graph, ParamStore, Tensor, Var};
use nofis::flows::RealNvp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The fixed-seed flow under test: dim 4, 6 coupling layers, hidden 8,
/// s_max 2.0, seeded init plus a seeded perturbation so the coupling nets
/// are away from their (near-identity) initialization.
fn golden_flow() -> (ParamStore, RealNvp) {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(1234);
    let flow = RealNvp::new(&mut store, 4, 6, 8, 2.0, &mut rng);
    let ids: Vec<_> = store.iter().map(|(id, _)| id).collect();
    let mut prng = StdRng::seed_from_u64(1334);
    for id in ids {
        for v in store.get_mut(id).as_mut_slice() {
            *v += prng.gen_range(-0.3..0.3);
        }
    }
    (store, flow)
}

const X: [f64; 4] = [0.3, -1.2, 0.7, 0.05];
const X2: [f64; 4] = [-2.1, 0.4, 1.3, -0.8];

fn assert_close(actual: f64, golden: f64, what: &str) {
    let tol = 1e-12 * golden.abs().max(1.0);
    assert!(
        (actual - golden).abs() <= tol,
        "{what}: got {actual:.17e}, golden {golden:.17e}"
    );
}

/// Checked-in golden values for the depth-6 forward transform of `X`/`X2`.
const GOLDEN_Z_X: [f64; 4] = [
    8.86291292630788874e-1,
    -2.37276219435049196e0,
    1.46982625150391755e0,
    -1.59112064566986511e-1,
];
const GOLDEN_LOGDET_X: f64 = 1.36990463621296188e0;
const GOLDEN_LOGQ_X: f64 = -5.89556492375466146e0;
const GOLDEN_Z3_X: [f64; 4] = [
    6.27375545052917927e-1,
    -2.86539793985904456e0,
    2.21664499764896705e0,
    1.57578045003655298e-1,
];
const GOLDEN_LOGDET3_X: f64 = 3.15346307247607971e0;

const GOLDEN_Z_X2: [f64; 4] = [
    -2.18897462521380159e0,
    1.36027376358683116e0,
    5.00509017638425258e-1,
    -1.64514637039569900e0,
];
const GOLDEN_LOGDET_X2: f64 = -7.53189992641720263e-1;
const GOLDEN_LOGQ_X2: f64 = -6.42727142838727339e0;
const GOLDEN_Z3_X2: [f64; 4] = [
    -2.41515317747567204e0,
    2.39054689096059514e0,
    4.07071483717245552e-1,
    -1.40103952888165617e0,
];
const GOLDEN_LOGDET3_X2: f64 = 6.37464362665707496e-1;

#[test]
fn forward_transform_matches_goldens() {
    let (store, flow) = golden_flow();
    for (x, gz, gld) in [
        (&X, &GOLDEN_Z_X, GOLDEN_LOGDET_X),
        (&X2, &GOLDEN_Z_X2, GOLDEN_LOGDET_X2),
    ] {
        let (z, logdet) = flow.transform(&store, x, 6);
        for (i, (&zi, &gi)) in z.iter().zip(gz.iter()).enumerate() {
            assert_close(zi, gi, &format!("z[{i}] of {x:?}"));
        }
        assert_close(logdet, gld, &format!("logdet of {x:?}"));
    }
}

#[test]
fn partial_depth_transform_matches_goldens() {
    let (store, flow) = golden_flow();
    for (x, gz, gld) in [
        (&X, &GOLDEN_Z3_X, GOLDEN_LOGDET3_X),
        (&X2, &GOLDEN_Z3_X2, GOLDEN_LOGDET3_X2),
    ] {
        let (z, logdet) = flow.transform(&store, x, 3);
        for (i, (&zi, &gi)) in z.iter().zip(gz.iter()).enumerate() {
            assert_close(zi, gi, &format!("depth-3 z[{i}] of {x:?}"));
        }
        assert_close(logdet, gld, &format!("depth-3 logdet of {x:?}"));
    }
}

#[test]
fn log_density_matches_goldens() {
    let (store, flow) = golden_flow();
    assert_close(flow.log_density(&store, &X, 6), GOLDEN_LOGQ_X, "ln q(X)");
    assert_close(flow.log_density(&store, &X2, 6), GOLDEN_LOGQ_X2, "ln q(X2)");
}

#[test]
fn inverse_round_trip_recovers_input_through_goldens() {
    let (store, flow) = golden_flow();
    for (x, gz) in [(&X, &GOLDEN_Z_X), (&X2, &GOLDEN_Z_X2)] {
        // Inverting the *golden* forward output must recover the input, so
        // forward and inverse are pinned against each other, not just
        // against their own history.
        let (back, logdet_inv) = flow.inverse(&store, gz, 6);
        for (i, (&bi, &xi)) in back.iter().zip(x.iter()).enumerate() {
            assert!(
                (bi - xi).abs() < 1e-9,
                "round-trip x[{i}]: got {bi}, expected {xi}"
            );
        }
        // The inverse log-det must cancel the forward one.
        let (_, logdet_fwd) = flow.transform(&store, x, 6);
        assert!(
            (logdet_fwd + logdet_inv).abs() < 1e-9,
            "logdet fwd {logdet_fwd} + inv {logdet_inv} != 0"
        );
    }
}

#[test]
fn sample_log_density_consistency_is_pinned() {
    // ln q from sampling (base - logdet along the path) must agree with
    // ln q from inversion at the sampled point.
    let (store, flow) = golden_flow();
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..20 {
        let (x, logq) = flow.sample(&store, 6, &mut rng);
        let logq2 = flow.log_density(&store, &x, 6);
        assert!(
            (logq - logq2).abs() < 1e-8,
            "sample logq {logq} vs inverse logq {logq2}"
        );
    }
}

#[test]
fn fused_tape_reproduces_goldens_bitwise() {
    // The fused matmul+bias+tanh / tanh-scale tape ops execute the exact
    // same floating-point program as the composed ops they replace, so the
    // checked-in goldens stay valid with fusion enabled (the default) and
    // the graph path agrees with the plain `transform` path bit for bit.
    let (store, flow) = golden_flow();
    let run = |fused: bool| {
        let mut g = Graph::new();
        g.set_fusion(fused);
        let mut data = X.to_vec();
        data.extend_from_slice(&X2);
        let x = g.constant(Tensor::from_vec(2, 4, data));
        let (z, logdet) = flow.forward_graph(&store, &mut g, x, 6);
        (g.value(z).clone(), g.value(logdet).clone())
    };
    let (z_f, ld_f) = run(true);
    let (z_u, ld_u) = run(false);
    for (i, (a, b)) in z_f.as_slice().iter().zip(z_u.as_slice()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "fused z[{i}] drifted");
    }
    for (i, (a, b)) in ld_f.as_slice().iter().zip(ld_u.as_slice()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "fused logdet[{i}] drifted");
    }
    // And the fused tape still lands on the checked-in goldens.
    for (i, (got, want)) in z_f.as_slice()[..4].iter().zip(&GOLDEN_Z_X).enumerate() {
        assert_close(*got, *want, &format!("fused graph z[{i}] of X"));
    }
    assert_close(
        ld_f.as_slice()[0],
        GOLDEN_LOGDET_X,
        "fused graph logdet of X",
    );
    let (z_plain, ld_plain) = flow.transform(&store, &X, 6);
    for (i, (a, b)) in z_f.as_slice()[..4].iter().zip(&z_plain).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "graph vs transform z[{i}]");
    }
    assert_eq!(ld_f.as_slice()[0].to_bits(), ld_plain.to_bits());
}

/// Builds a representative training tape over the golden flow for the
/// given batch: forward transform, an external row-wise oracle, and a
/// NOFIS-style scalar loss chain. Returns `(graph, z, logdet, loss)`.
fn trace_step(store: &ParamStore, flow: &RealNvp, batch: &[f64]) -> (Graph, Var, Var, Var, Var) {
    let mut g = Graph::new();
    g.set_pruning(true);
    let x = g.constant(Tensor::from_vec(batch.len() / 4, 4, batch.to_vec()));
    let (z, logdet) = flow.forward_graph(store, &mut g, x, 6);
    let gval = g.external_rowwise_par(z, nofis_parallel::global(), |row| {
        (1.25 - row[0], vec![-1.0, 0.0, 0.0, 0.0])
    });
    let clipped = g.min_scalar(gval, 0.0);
    let sq = g.square(clipped);
    let sc = g.sum_cols(z);
    let half = g.scale(sc, -0.5);
    let tempered = g.add_scalar(gval, 3.0);
    let a = g.add(half, tempered);
    let b = g.add(a, clipped);
    let m = g.mean_all(b);
    let loss0 = g.neg(m);
    let sq_m = g.mean_all(sq);
    let ld_m = g.mean_all(logdet);
    let t1 = g.add(loss0, sq_m);
    let t2 = g.add(t1, ld_m);
    let loss = g.tanh(t2);
    (g, x, z, logdet, loss)
}

#[test]
fn compiled_tape_replay_reproduces_goldens_bitwise() {
    // The trace-once/replay engine must execute the exact same
    // floating-point program as rebuilding the tape every step: same
    // forward values (so the checked-in goldens stay valid with
    // compilation on, the default), same parameter gradients bit for bit —
    // on the traced batch and on fresh batches replayed into the
    // preplanned buffers.
    let (store, flow) = golden_flow();
    let mut batch = X.to_vec();
    batch.extend_from_slice(&X2);

    let (mut g, x, z, logdet, loss) = trace_step(&store, &flow, &batch);
    g.backward(loss);
    let mut compiled = CompiledStep::compile(&g, loss, Some(x), &store);

    // Goldens hold on the compiled values exactly as on the interpreted
    // tape (the trace copies them verbatim; replay recomputes them).
    for pass in 0..2 {
        for (i, (got, want)) in compiled.value(z).as_slice()[..4]
            .iter()
            .zip(&GOLDEN_Z_X)
            .enumerate()
        {
            assert_close(*got, *want, &format!("compiled z[{i}] of X, pass {pass}"));
        }
        assert_close(
            compiled.value(logdet).as_slice()[0],
            GOLDEN_LOGDET_X,
            &format!("compiled logdet of X, pass {pass}"),
        );
        compiled.replay_forward(
            &store,
            |buf| buf.copy_from_slice(&batch),
            nofis_parallel::global(),
            |row| (1.25 - row[0], vec![-1.0, 0.0, 0.0, 0.0]),
        );
        compiled.backward();
    }

    // Replay on a *different* batch matches a freshly built interpreted
    // tape on that batch, values and parameter gradients bitwise.
    let batch2: Vec<f64> = batch.iter().map(|v| v * 0.7 - 0.11).collect();
    compiled.replay_forward(
        &store,
        |buf| buf.copy_from_slice(&batch2),
        nofis_parallel::global(),
        |row| (1.25 - row[0], vec![-1.0, 0.0, 0.0, 0.0]),
    );
    compiled.backward();
    let (mut g2, _, z2, ld2, loss2) = trace_step(&store, &flow, &batch2);
    g2.backward(loss2);
    for (what, a, b) in [
        ("z", g2.value(z2), compiled.value(z)),
        ("logdet", g2.value(ld2), compiled.value(logdet)),
        ("loss", g2.value(loss2), compiled.value(loss)),
    ] {
        for (i, (x1, x2)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert_eq!(
                x1.to_bits(),
                x2.to_bits(),
                "compiled {what}[{i}] drifted from interpreted"
            );
        }
    }
    let gi = g2.param_grads();
    let gc = compiled.param_grads();
    assert_eq!(gi.len(), gc.len(), "param grad count");
    for ((id_i, ti), (id_c, tc)) in gi.iter().zip(&gc) {
        assert_eq!(id_i, id_c, "param grad order");
        for (i, (x1, x2)) in ti.as_slice().iter().zip(tc.as_slice()).enumerate() {
            assert_eq!(
                x1.to_bits(),
                x2.to_bits(),
                "compiled grad of {id_i:?}[{i}] drifted"
            );
        }
    }
    // Replays recycle the preplanned buffers: the backward scratch pool
    // sees no steady-state misses.
    let stats = compiled.pool_stats();
    assert!(
        stats.hits >= stats.misses,
        "scratch pool should reach steady state: {stats:?}"
    );
}
